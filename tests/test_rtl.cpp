// Tests for src/rtl: every lowered component is simulated and compared to a
// software model (adders vs integer arithmetic, CRC gates vs the reference
// implementation, FIFO vs std::deque, LFSR vs a bit-twiddled model, …).

#include <gtest/gtest.h>

#include <deque>

#include "rtl/arith.hpp"
#include "rtl/crc.hpp"
#include "rtl/fifo.hpp"
#include "rtl/fsm.hpp"
#include "rtl/sequential.hpp"
#include "rtl/word.hpp"
#include "sim/packed_sim.hpp"
#include "util/rng.hpp"

namespace ffr::rtl {
namespace {

using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;
using sim::PackedSimulator;

// Drive a word of input nets with an integer value (broadcast to all lanes).
void drive_word(PackedSimulator& simulator, std::span<const NetId> nets,
                std::uint64_t value) {
  for (std::size_t i = 0; i < nets.size(); ++i) {
    simulator.set_input_broadcast(nets[i], ((value >> i) & 1ULL) != 0);
  }
}

// Read a word of nets as an integer (lane 0).
std::uint64_t read_word(const PackedSimulator& simulator,
                        std::span<const NetId> nets) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (simulator.value_in_lane(nets[i], 0)) value |= 1ULL << i;
  }
  return value;
}

TEST(WordOps, ConstantWord) {
  NetlistBuilder bld("t");
  const Word w = constant_word(bld, 0xA5, 8);
  bld.output_bus(w, "y");
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  simulator.eval();
  EXPECT_EQ(read_word(simulator, w), 0xA5u);
}

TEST(WordOps, BitwiseOpsMatchIntegers) {
  NetlistBuilder bld("t");
  const auto a = bld.input_bus("a", 8);
  const auto b = bld.input_bus("b", 8);
  const Word w_and = word_and(bld, a, b);
  const Word w_or = word_or(bld, a, b);
  const Word w_xor = word_xor(bld, a, b);
  const Word w_not = word_not(bld, a);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t av = rng.below(256);
    const std::uint64_t bv = rng.below(256);
    drive_word(simulator, a, av);
    drive_word(simulator, b, bv);
    simulator.eval();
    EXPECT_EQ(read_word(simulator, w_and), (av & bv));
    EXPECT_EQ(read_word(simulator, w_or), (av | bv));
    EXPECT_EQ(read_word(simulator, w_xor), (av ^ bv));
    EXPECT_EQ(read_word(simulator, w_not), (~av) & 0xFF);
  }
}

TEST(WordOps, MuxAndShift) {
  NetlistBuilder bld("t");
  const auto a = bld.input_bus("a", 8);
  const auto b = bld.input_bus("b", 8);
  const NetId sel = bld.input("sel");
  const Word muxed = word_mux(bld, a, b, sel);
  const Word shl2 = word_shl(bld, a, 2);
  const Word shr3 = word_shr(bld, a, 3);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  drive_word(simulator, a, 0b10110101);
  drive_word(simulator, b, 0b01001010);
  simulator.set_input_broadcast(sel, false);
  simulator.eval();
  EXPECT_EQ(read_word(simulator, muxed), 0b10110101u);
  EXPECT_EQ(read_word(simulator, shl2), (0b10110101u << 2) & 0xFF);
  EXPECT_EQ(read_word(simulator, shr3), 0b10110101u >> 3);
  simulator.set_input_broadcast(sel, true);
  simulator.eval();
  EXPECT_EQ(read_word(simulator, muxed), 0b01001010u);
}

TEST(WordOps, WidthMismatchThrows) {
  NetlistBuilder bld("t");
  const auto a = bld.input_bus("a", 4);
  const auto b = bld.input_bus("b", 5);
  EXPECT_THROW((void)word_and(bld, a, b), std::invalid_argument);
}

class AdderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderSweep, MatchesIntegerAddition) {
  const std::size_t width = GetParam();
  NetlistBuilder bld("t");
  const auto a = bld.input_bus("a", width);
  const auto b = bld.input_bus("b", width);
  const NetId cin = bld.input("cin");
  const AdderResult sum = adder(bld, a, b, cin);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  util::Rng rng(width);
  const std::uint64_t mask = (width == 64) ? ~0ULL : ((1ULL << width) - 1);
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t av = rng.below(mask + 1);
    const std::uint64_t bv = rng.below(mask + 1);
    const bool c = rng.bernoulli(0.5);
    drive_word(simulator, a, av);
    drive_word(simulator, b, bv);
    simulator.set_input_broadcast(cin, c);
    simulator.eval();
    const std::uint64_t expected = av + bv + (c ? 1 : 0);
    EXPECT_EQ(read_word(simulator, sum.sum), expected & mask);
    EXPECT_EQ(simulator.value_in_lane(sum.carry_out, 0), ((expected >> width) & 1) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderSweep, ::testing::Values(1, 4, 8, 16, 24));

TEST(Arith, IncrementerAndComparators) {
  NetlistBuilder bld("t");
  const auto a = bld.input_bus("a", 6);
  const auto b = bld.input_bus("b", 6);
  const AdderResult inc = incrementer(bld, a);
  const NetId eq = equals(bld, a, b);
  const NetId lt = less_than(bld, a, b);
  const NetId eq17 = equals_const(bld, a, 17);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  for (std::uint64_t av = 0; av < 64; av += 3) {
    for (std::uint64_t bv = 0; bv < 64; bv += 5) {
      drive_word(simulator, a, av);
      drive_word(simulator, b, bv);
      simulator.eval();
      EXPECT_EQ(read_word(simulator, inc.sum), (av + 1) & 63);
      EXPECT_EQ(simulator.value_in_lane(eq, 0), av == bv);
      EXPECT_EQ(simulator.value_in_lane(lt, 0), av < bv);
      EXPECT_EQ(simulator.value_in_lane(eq17, 0), av == 17);
    }
  }
}

TEST(Arith, SubtractorBorrow) {
  NetlistBuilder bld("t");
  const auto a = bld.input_bus("a", 5);
  const auto b = bld.input_bus("b", 5);
  const AdderResult diff = subtractor(bld, a, b);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  for (std::uint64_t av = 0; av < 32; av += 2) {
    for (std::uint64_t bv = 0; bv < 32; bv += 3) {
      drive_word(simulator, a, av);
      drive_word(simulator, b, bv);
      simulator.eval();
      EXPECT_EQ(read_word(simulator, diff.sum), (av - bv) & 31);
      EXPECT_EQ(simulator.value_in_lane(diff.carry_out, 0), av < bv);
    }
  }
}

TEST(Arith, DecoderOneHot) {
  NetlistBuilder bld("t");
  const auto a = bld.input_bus("a", 3);
  const Word dec = decoder(bld, a);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  for (std::uint64_t v = 0; v < 8; ++v) {
    drive_word(simulator, a, v);
    simulator.eval();
    EXPECT_EQ(read_word(simulator, dec), 1ULL << v);
  }
}

TEST(Crc, SoftwareMatchesKnownVectors) {
  // Standard check value: CRC-32("123456789") = 0xCBF43926.
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(msg), 0xCBF43926u);
  // Empty message: init ^ final = 0.
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc, GateLevelMatchesSoftware) {
  NetlistBuilder bld("t");
  const auto state_in = bld.input_bus("s", 32);
  const auto byte_in = bld.input_bus("d", 8);
  const Word next = crc32_byte_next(bld, state_in, byte_in);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const auto state = static_cast<std::uint32_t>(rng());
    const auto byte = static_cast<std::uint8_t>(rng.below(256));
    drive_word(simulator, state_in, state);
    drive_word(simulator, byte_in, byte);
    simulator.eval();
    EXPECT_EQ(read_word(simulator, next), crc32_update(state, byte));
  }
}

TEST(Sequential, RegisterCapturesEveryCycle) {
  NetlistBuilder bld("t");
  const auto d = bld.input_bus("d", 8);
  Register reg = make_register(bld, "r", d, 0x3C);
  bld.output_bus(reg.q, "q");
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  EXPECT_EQ(read_word(simulator, reg.q), 0x3Cu);  // init value
  drive_word(simulator, d, 0x7E);
  simulator.eval();
  simulator.tick();
  EXPECT_EQ(read_word(simulator, reg.q), 0x7Eu);
}

TEST(Sequential, RegisterEnHoldsWithoutEnable) {
  NetlistBuilder bld("t");
  const auto d = bld.input_bus("d", 8);
  const NetId en = bld.input("en");
  Register reg = make_register_en(bld, "r", d, en, 0x11);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  drive_word(simulator, d, 0xAB);
  simulator.set_input_broadcast(en, false);
  simulator.eval();
  simulator.tick();
  EXPECT_EQ(read_word(simulator, reg.q), 0x11u);
  simulator.set_input_broadcast(en, true);
  simulator.eval();
  simulator.tick();
  EXPECT_EQ(read_word(simulator, reg.q), 0xABu);
}

TEST(Sequential, CounterCountsAndWraps) {
  NetlistBuilder bld("t");
  const NetId en = bld.input("en");
  Counter counter = make_counter(bld, "c", 3, en);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  simulator.set_input_broadcast(en, true);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    simulator.eval();
    const bool expect_wrap = (i % 8) == 0;
    EXPECT_EQ(simulator.value_in_lane(counter.wrap, 0), expect_wrap) << i;
    simulator.tick();
    EXPECT_EQ(read_word(simulator, counter.reg.q), i % 8);
  }
  // Disabled: holds.
  simulator.set_input_broadcast(en, false);
  simulator.eval();
  simulator.tick();
  EXPECT_EQ(read_word(simulator, counter.reg.q), 10 % 8);
}

TEST(Sequential, CounterClearWinsOverEnable) {
  NetlistBuilder bld("t");
  const NetId en = bld.input("en");
  const NetId clr = bld.input("clr");
  Counter counter = make_counter_clear(bld, "c", 4, en, clr);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  simulator.set_input_broadcast(en, true);
  simulator.set_input_broadcast(clr, false);
  for (int i = 0; i < 5; ++i) {
    simulator.eval();
    simulator.tick();
  }
  EXPECT_EQ(read_word(simulator, counter.reg.q), 5u);
  simulator.set_input_broadcast(clr, true);
  simulator.eval();
  simulator.tick();
  EXPECT_EQ(read_word(simulator, counter.reg.q), 0u);
}

TEST(Sequential, ShiftRegisterShiftsLsbWard) {
  NetlistBuilder bld("t");
  const NetId si = bld.input("si");
  const NetId en = bld.input("en");
  Register reg = make_shift_register(bld, "s", 4, si, en, 0);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  simulator.set_input_broadcast(en, true);
  // Shift in 1,0,1,1 (bit enters at MSB, travels toward bit 0).
  const bool bits[] = {true, false, true, true};
  for (const bool b : bits) {
    simulator.set_input_broadcast(si, b);
    simulator.eval();
    simulator.tick();
  }
  // After 4 shifts the first bit is at position 0.
  EXPECT_EQ(read_word(simulator, reg.q), 0b1101u);
}

TEST(Sequential, LfsrMatchesSoftwareModel) {
  const std::size_t taps[] = {0, 2, 3, 5};
  NetlistBuilder bld("t");
  const NetId en = bld.input("en");
  Register lfsr = make_lfsr(bld, "l", 16, taps, en, 0xACE1);
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  simulator.set_input_broadcast(en, true);
  std::uint64_t model = 0xACE1;
  for (int step = 0; step < 100; ++step) {
    EXPECT_EQ(read_word(simulator, lfsr.q), model) << "step " << step;
    simulator.eval();
    simulator.tick();
    std::uint64_t fb = 0;
    for (const std::size_t tap : taps) fb ^= (model >> tap) & 1;
    model = (model >> 1) | (fb << 15);
  }
}

TEST(Sequential, LfsrZeroInitRejected) {
  const std::size_t taps[] = {0, 1};
  NetlistBuilder bld("t");
  const NetId en = bld.input("en");
  EXPECT_THROW((void)make_lfsr(bld, "l", 8, taps, en, 0), std::invalid_argument);
}

TEST(Fifo, PushPopMatchesDeque) {
  NetlistBuilder bld("t");
  const auto din = bld.input_bus("din", 8);
  const NetId wr = bld.input("wr");
  const NetId rd = bld.input("rd");
  Fifo fifo = make_fifo(bld, "f", din, 2, wr, rd);  // 4 entries
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  util::Rng rng(5);
  std::deque<std::uint8_t> model;
  for (int step = 0; step < 400; ++step) {
    const bool do_wr = rng.bernoulli(0.5);
    const bool do_rd = rng.bernoulli(0.5);
    const auto value = static_cast<std::uint8_t>(rng.below(256));
    drive_word(simulator, din, value);
    simulator.set_input_broadcast(wr, do_wr);
    simulator.set_input_broadcast(rd, do_rd);
    simulator.eval();
    EXPECT_EQ(simulator.value_in_lane(fifo.empty, 0), model.empty()) << step;
    EXPECT_EQ(simulator.value_in_lane(fifo.full, 0), model.size() == 4) << step;
    EXPECT_EQ(read_word(simulator, fifo.occupancy), model.size()) << step;
    if (!model.empty()) {
      EXPECT_EQ(read_word(simulator, fifo.dout), model.front()) << step;
    }
    // Model the same semantics: write if not full, read if not empty.
    const bool wrote = do_wr && model.size() < 4;
    const bool read = do_rd && !model.empty();
    if (read) model.pop_front();
    if (wrote) model.push_back(value);
    simulator.tick();
  }
}

TEST(Fifo, SimultaneousReadWriteWhenFull) {
  NetlistBuilder bld("t");
  const auto din = bld.input_bus("din", 4);
  const NetId wr = bld.input("wr");
  const NetId rd = bld.input("rd");
  Fifo fifo = make_fifo(bld, "f", din, 1, wr, rd);  // 2 entries
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  // Fill.
  simulator.set_input_broadcast(rd, false);
  simulator.set_input_broadcast(wr, true);
  for (std::uint64_t v = 1; v <= 2; ++v) {
    drive_word(simulator, din, v);
    simulator.eval();
    simulator.tick();
  }
  simulator.eval();
  EXPECT_TRUE(simulator.value_in_lane(fifo.full, 0));
  // Read+write while full: the write is dropped (full gates it), read works.
  drive_word(simulator, din, 3);
  simulator.set_input_broadcast(rd, true);
  simulator.eval();
  simulator.tick();
  simulator.eval();
  EXPECT_FALSE(simulator.value_in_lane(fifo.full, 0));
  EXPECT_EQ(read_word(simulator, fifo.dout), 2u);
}

TEST(Fsm, FollowsTransitionsWithPriority) {
  NetlistBuilder bld("t");
  const NetId go = bld.input("go");
  const NetId jump = bld.input("jump");
  FsmBuilder fsm_b(bld, "f", 3, 0);
  fsm_b.transition(0, 1, go);
  fsm_b.transition(0, 2, jump);  // lower priority than go
  fsm_b.transition(1, 2, bld.constant(true));
  fsm_b.transition(2, 0, go);
  Fsm fsm = fsm_b.build();
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  auto state_of = [&] {
    simulator.eval();
    return read_word(simulator, fsm.state);
  };
  EXPECT_EQ(state_of(), 0b001u);  // initial
  // Both go and jump: go wins.
  simulator.set_input_broadcast(go, true);
  simulator.set_input_broadcast(jump, true);
  simulator.eval();
  simulator.tick();
  EXPECT_EQ(state_of(), 0b010u);
  // State 1 always advances to 2.
  simulator.set_input_broadcast(go, false);
  simulator.eval();
  simulator.tick();
  EXPECT_EQ(state_of(), 0b100u);
  // Without go, state 2 holds.
  simulator.eval();
  simulator.tick();
  EXPECT_EQ(state_of(), 0b100u);
}

TEST(Fsm, BuildTwiceThrows) {
  NetlistBuilder bld("t");
  FsmBuilder fsm_b(bld, "f", 2, 0);
  fsm_b.transition(0, 1, bld.constant(true));
  (void)fsm_b.build();
  EXPECT_THROW((void)fsm_b.build(), std::logic_error);
}

}  // namespace
}  // namespace ffr::rtl
