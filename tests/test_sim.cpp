// Tests for src/sim: packed-lane semantics, fault injection mechanics,
// testbench runner (stimulus, loopback, monitor, activity tracing).

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "rtl/sequential.hpp"
#include "rtl/word.hpp"
#include "sim/packed_sim.hpp"
#include "sim/runner.hpp"

namespace ffr::sim {
namespace {

using netlist::FlipFlop;
using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

TEST(PackedSim, RequiresFinalizedNetlist) {
  Netlist nl("t");
  EXPECT_THROW(PackedSimulator{nl}, std::invalid_argument);
}

TEST(PackedSim, LanesAreIndependent) {
  NetlistBuilder bld("t");
  const NetId a = bld.input("a");
  const NetId b = bld.input("b");
  const NetId y = bld.xor2(a, b);
  bld.output(y, "y");
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  simulator.set_input(a, 0b1100);
  simulator.set_input(b, 0b1010);
  simulator.eval();
  EXPECT_EQ(simulator.value(y) & 0xF, 0b0110u);
}

TEST(PackedSim, ResetRestoresInitValues) {
  NetlistBuilder bld("t");
  const NetId d = bld.input("d");
  FlipFlop ff = bld.dff(d, true, "r");
  bld.output(ff.q, "y");
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  EXPECT_EQ(simulator.ff_state(ff.cell), kAllLanes);
  simulator.set_input_broadcast(d, false);
  simulator.eval();
  simulator.tick();
  EXPECT_EQ(simulator.ff_state(ff.cell), 0u);
  simulator.reset();
  EXPECT_EQ(simulator.ff_state(ff.cell), kAllLanes);
}

TEST(PackedSim, InjectFlipsOnlyMaskedLanes) {
  NetlistBuilder bld("t");
  const NetId d = bld.input("d");
  FlipFlop ff = bld.dff(d, false, "r");
  const NetId y = bld.buf(ff.q);
  bld.output(y, "y");
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  simulator.inject(ff.cell, 0b101);
  simulator.eval();
  EXPECT_EQ(simulator.value(y), 0b101u);
  // Injection is a state flip: injecting again reverts.
  simulator.inject(ff.cell, 0b001);
  simulator.eval();
  EXPECT_EQ(simulator.value(y), 0b100u);
}

TEST(PackedSim, InjectOnNonFlipFlopThrows) {
  NetlistBuilder bld("t");
  const NetId a = bld.input("a");
  const NetId y = bld.inv(a);
  bld.output(y, "y");
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  const netlist::CellId inv_cell = nl.net(y).driver;
  EXPECT_THROW(simulator.inject(inv_cell, 1), std::invalid_argument);
}

TEST(PackedSim, SetInputRejectsInternalNet) {
  NetlistBuilder bld("t");
  const NetId a = bld.input("a");
  const NetId y = bld.inv(a);
  bld.output(y, "y");
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  EXPECT_THROW(simulator.set_input(y, 1), std::invalid_argument);
}

TEST(PackedSim, FaultPropagatesThroughPipeline) {
  // Three-stage pipeline of a single bit; a flip in stage 0 must appear at
  // the output exactly 2 cycles later and then clear.
  NetlistBuilder bld("t");
  const NetId d = bld.input("d");
  FlipFlop s0 = bld.dff(d, false, "s0");
  FlipFlop s1 = bld.dff(s0.q, false, "s1");
  FlipFlop s2 = bld.dff(s1.q, false, "s2");
  bld.output(s2.q, "y");
  const Netlist nl = bld.build();
  PackedSimulator simulator(nl);
  simulator.set_input_broadcast(d, false);
  simulator.inject(s0.cell, 0b1);
  for (int cycle = 0; cycle < 4; ++cycle) {
    simulator.eval();
    const bool expect_seen = cycle == 2;
    EXPECT_EQ(simulator.value_in_lane(s2.q, 0), expect_seen) << cycle;
    simulator.tick();
  }
}

// ---- runner ------------------------------------------------------------------

// A 1-byte "echo" DUT: input byte + valid; output = registered input, with a
// sop/eop framing so the monitor can extract frames. eop entries carry data
// here (unlike the MAC) — the monitor must treat them as end markers.
struct EchoDut {
  Netlist netlist{"echo"};
  NetId in_valid, in_sop, in_eop;
  std::vector<NetId> in_data;
  PacketMonitorSpec monitor;
  netlist::CellId data_ff0 = netlist::kNoCell;
};

EchoDut build_echo() {
  EchoDut dut;
  NetlistBuilder bld("echo");
  dut.in_valid = bld.input("valid");
  dut.in_sop = bld.input("sop");
  dut.in_eop = bld.input("eop");
  dut.in_data = bld.input_bus("data", 8);
  rtl::Register data_r = rtl::make_register(bld, "data_r", dut.in_data);
  rtl::Register valid_r =
      rtl::make_register(bld, "valid_r", std::vector<NetId>{dut.in_valid});
  rtl::Register sop_r =
      rtl::make_register(bld, "sop_r", std::vector<NetId>{dut.in_sop});
  rtl::Register eop_r =
      rtl::make_register(bld, "eop_r", std::vector<NetId>{dut.in_eop});
  bld.output_bus(data_r.q, "out_data");
  bld.output(valid_r.q[0], "out_valid");
  bld.output(sop_r.q[0], "out_sop");
  bld.output(eop_r.q[0], "out_eop");
  dut.monitor.valid = valid_r.q[0];
  dut.monitor.sop = sop_r.q[0];
  dut.monitor.eop = eop_r.q[0];
  dut.monitor.data = data_r.q;
  dut.data_ff0 = data_r.ffs[0].cell;
  // No err signal in this DUT: reuse a constant-0 net.
  dut.monitor.err = bld.constant(false);
  dut.netlist = bld.build();
  return dut;
}

Testbench echo_testbench(const EchoDut& dut,
                         const std::vector<std::vector<std::uint8_t>>& frames) {
  const auto& nl = dut.netlist;
  std::size_t cycles = 4;
  for (const auto& f : frames) cycles += f.size() + 3;  // +1 eop marker + gap
  Stimulus stim(nl.primary_inputs().size(), cycles);
  const auto pi = [&](NetId net) {
    return static_cast<std::size_t>(nl.net(net).pi_index);
  };
  std::size_t c = 2;
  for (const auto& frame : frames) {
    for (std::size_t i = 0; i < frame.size(); ++i) {
      stim.set(pi(dut.in_valid), c, true);
      stim.set(pi(dut.in_sop), c, i == 0);
      for (std::size_t b = 0; b < 8; ++b) {
        stim.set(pi(dut.in_data[b]), c, ((frame[i] >> b) & 1) != 0);
      }
      ++c;
    }
    // End marker entry (no payload).
    stim.set(pi(dut.in_valid), c, true);
    stim.set(pi(dut.in_eop), c, true);
    c += 3;
  }
  Testbench tb;
  tb.stimulus = std::move(stim);
  tb.monitor = dut.monitor;
  tb.inject_begin = 0;
  tb.inject_end = cycles;
  return tb;
}

TEST(Runner, GoldenEchoExtractsFrames) {
  const EchoDut dut = build_echo();
  const std::vector<std::vector<std::uint8_t>> frames = {
      {0x01, 0x02, 0x03}, {0xAA}, {0x10, 0x20, 0x30, 0x40}};
  const Testbench tb = echo_testbench(dut, frames);
  const GoldenResult golden = run_golden(dut.netlist, tb);
  ASSERT_EQ(golden.frames.size(), 3u);
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_EQ(golden.frames[f].bytes, frames[f]);
    EXPECT_FALSE(golden.frames[f].err);
  }
}

TEST(Runner, ActivityTraceCountsChanges) {
  const EchoDut dut = build_echo();
  const std::vector<std::vector<std::uint8_t>> frames = {{0xFF, 0x00, 0xFF}};
  const Testbench tb = echo_testbench(dut, frames);
  const GoldenResult golden = run_golden(dut.netlist, tb);
  EXPECT_EQ(golden.activity.total_cycles, tb.stimulus.num_cycles());
  // data_r bit 0 goes 0 ->1 -> 0 -> 1 -> 0 over the run: 4 changes.
  const auto ffs = dut.netlist.flip_flops();
  std::size_t ff_index = ffs.size();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    if (ffs[i] == dut.data_ff0) ff_index = i;
  }
  ASSERT_LT(ff_index, ffs.size());
  EXPECT_EQ(golden.activity.state_changes[ff_index], 4u);
  EXPECT_GT(golden.activity.cycles_at_1[ff_index], 0u);
}

TEST(Runner, InjectionCorruptsOnlyTargetLanes) {
  const EchoDut dut = build_echo();
  const std::vector<std::vector<std::uint8_t>> frames = {{0x00, 0x00, 0x00}};
  const Testbench tb = echo_testbench(dut, frames);
  // Flip data_r bit 0 at the cycle the second byte is registered, lanes 1+2.
  InjectionEvent ev;
  ev.ff_cell = dut.data_ff0;
  ev.cycle = 4;  // first byte visible at output during cycle 3
  ev.lane_mask = 0b110;
  const RunResult run = run_testbench(dut.netlist, tb, {&ev, 1});
  // Lane 0 clean.
  ASSERT_EQ(run.lane_frames[0].size(), 1u);
  EXPECT_EQ(run.lane_frames[0][0].bytes, frames[0]);
  // Lanes 1 and 2 corrupted somewhere.
  for (const std::size_t lane : {1, 2}) {
    ASSERT_EQ(run.lane_frames[lane].size(), 1u) << lane;
    EXPECT_NE(run.lane_frames[lane][0].bytes, frames[0]) << lane;
  }
  // Lane 3 untouched.
  EXPECT_EQ(run.lane_frames[3][0].bytes, frames[0]);
}

TEST(Runner, InjectionBeyondEndRejected) {
  const EchoDut dut = build_echo();
  const Testbench tb = echo_testbench(dut, {{0x01}});
  InjectionEvent ev;
  ev.ff_cell = dut.data_ff0;
  ev.cycle = static_cast<std::uint32_t>(tb.stimulus.num_cycles());
  ev.lane_mask = 1;
  EXPECT_THROW((void)run_testbench(dut.netlist, tb, {&ev, 1}),
               std::invalid_argument);
}

TEST(Runner, LoopbackFeedsOutputBackToInput) {
  // DUT: out = reg(in); loop out -> in2; y = reg(in2). A pulse on `in`
  // appears on y two cycles later (one DUT reg + one loopback delay... the
  // loopback itself is registered by the harness, so three cycles total).
  NetlistBuilder bld("loop");
  const NetId in = bld.input("in");
  const NetId in2 = bld.input("in2");
  rtl::Register a = rtl::make_register(bld, "a", std::vector<NetId>{in});
  rtl::Register b = rtl::make_register(bld, "b", std::vector<NetId>{in2});
  bld.output(a.q[0], "a_out");
  bld.output(b.q[0], "y");
  const Netlist nl = bld.build();

  Stimulus stim(nl.primary_inputs().size(), 8);
  stim.set(0, 1, true);  // pulse on `in` at cycle 1
  Testbench tb;
  tb.stimulus = stim;
  tb.loopbacks.push_back({a.q[0], in2, false});
  // Monitor y as a "frame byte" stream: valid = y itself; single-bit data.
  // sop tracks valid; eop/err track `in` (never high during valid cycles),
  // so the frame is left open and finish() closes it with err set.
  tb.monitor.valid = b.q[0];
  tb.monitor.sop = b.q[0];
  tb.monitor.eop = nl.primary_inputs()[0];
  tb.monitor.err = nl.primary_inputs()[0];
  tb.monitor.data = {b.q[0]};

  const RunResult run = run_testbench(nl, tb);
  // y pulses exactly once: in@1 -> a@2 -> loop captured end of cycle 2 ->
  // in2@3 -> y@4... frame extraction sees one 1-byte frame (left open).
  ASSERT_EQ(run.lane_frames[0].size(), 1u);
  EXPECT_EQ(run.lane_frames[0][0].bytes.size(), 1u);
}

}  // namespace
}  // namespace ffr::sim
