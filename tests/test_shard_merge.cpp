// Differential shard-equivalence harness for sharded campaigns
// (fault/shard.hpp): for every shard count, merge order, replay mode, lane
// width and thread count, merge_partials() over the k-of-N partials must
// reconstruct the unsharded CampaignEngine::run bit-identically — per-FF
// class counts, FDR vector and every deterministic cost counter included —
// and match the flat run_campaign science reference. Also covers the partial
// text format round-trip, crash-recovery (truncated / corrupt /
// wrong-version / wrong-hash partials rejected with positioned errors,
// missing shards re-run exactly), and warning deduplication on merge.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "fault/campaign.hpp"
#include "fault/engine.hpp"
#include "fault/shard.hpp"
#include "service/content_hash.hpp"

namespace ffr::fault {
namespace {

/// Full bit-identity: science output AND every deterministic cost counter.
/// (wall_seconds is wall clock and intentionally not compared.)
void expect_result_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.per_ff.size(), b.per_ff.size());
  for (std::size_t i = 0; i < a.per_ff.size(); ++i) {
    EXPECT_EQ(a.per_ff[i].ff_index, b.per_ff[i].ff_index) << "ff " << i;
    EXPECT_EQ(a.per_ff[i].name, b.per_ff[i].name) << "ff " << i;
    EXPECT_EQ(a.per_ff[i].injections, b.per_ff[i].injections) << "ff " << i;
    EXPECT_EQ(a.per_ff[i].classes.counts, b.per_ff[i].classes.counts)
        << "ff " << i << " (" << a.per_ff[i].name << ")";
  }
  const auto fdr_a = a.fdr_vector();
  const auto fdr_b = b.fdr_vector();
  ASSERT_EQ(fdr_a.size(), fdr_b.size());
  for (std::size_t i = 0; i < fdr_a.size(); ++i) {
    EXPECT_EQ(fdr_a[i], fdr_b[i]) << "ff " << i;
  }
  EXPECT_EQ(a.total_injections, b.total_injections);
  EXPECT_EQ(a.total_sim_passes, b.total_sim_passes);
  EXPECT_EQ(a.lanes_per_pass, b.lanes_per_pass);
  EXPECT_EQ(a.blocks_per_pass, b.blocks_per_pass);
  ASSERT_EQ(a.pass_histogram.size(), b.pass_histogram.size());
  for (std::size_t i = 0; i < a.pass_histogram.size(); ++i) {
    EXPECT_EQ(a.pass_histogram[i].width, b.pass_histogram[i].width)
        << "shape " << i;
    EXPECT_EQ(a.pass_histogram[i].blocks, b.pass_histogram[i].blocks)
        << "shape " << i;
    EXPECT_EQ(a.pass_histogram[i].passes, b.pass_histogram[i].passes)
        << "shape " << i;
  }
  EXPECT_EQ(a.cycles_simulated, b.cycles_simulated);
  EXPECT_EQ(a.ops_evaluated, b.ops_evaluated);
  EXPECT_EQ(a.checkpoint_restores, b.checkpoint_restores);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  EXPECT_EQ(a.checkpoint_bytes_unpacked, b.checkpoint_bytes_unpacked);
  EXPECT_EQ(a.warnings, b.warnings);
}

/// Science-only identity against the flat reference (its pass accounting
/// legitimately differs from the batched engine's).
void expect_science_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.per_ff.size(), b.per_ff.size());
  for (std::size_t i = 0; i < a.per_ff.size(); ++i) {
    EXPECT_EQ(a.per_ff[i].ff_index, b.per_ff[i].ff_index) << "ff " << i;
    EXPECT_EQ(a.per_ff[i].injections, b.per_ff[i].injections) << "ff " << i;
    EXPECT_EQ(a.per_ff[i].classes.counts, b.per_ff[i].classes.counts)
        << "ff " << i;
  }
  EXPECT_EQ(a.fdr_vector(), b.fdr_vector());
  EXPECT_EQ(a.total_injections, b.total_injections);
}

/// Runs all N shards of `config` and returns the partials in shard order.
std::vector<CampaignPartial> run_all_shards(const CampaignEngine& engine,
                                            CampaignConfig config,
                                            const std::string& hash,
                                            std::size_t count) {
  std::vector<CampaignPartial> partials;
  partials.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    config.shard = ShardSpec{k, count};
    partials.push_back(run_shard(engine, config, hash));
  }
  return partials;
}

struct MacShardFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    circuits::MacConfig mc;
    mc.tx_depth_log2 = 3;
    mc.rx_depth_log2 = 3;
    mac = new circuits::MacCore(circuits::build_mac_core(mc));
    circuits::MacTestbenchConfig tbc;
    tbc.num_frames = 3;
    tbc.min_payload = 8;
    tbc.max_payload = 16;
    tbc.seed = 5;
    bench = new circuits::MacTestbench(circuits::build_mac_testbench(*mac, tbc));
    engine = new CampaignEngine(mac->netlist, bench->tb);
    hash = new std::string(
        service::content_hash(mac->netlist, bench->tb).hex());
  }
  static void TearDownTestSuite() {
    delete hash;
    hash = nullptr;
    delete engine;
    engine = nullptr;
    delete bench;
    bench = nullptr;
    delete mac;
    mac = nullptr;
  }

  /// Small but multi-pass campaign: a subset spanning the census with
  /// enough injections for several 64-lane passes.
  static CampaignConfig base_config() {
    CampaignConfig config;
    config.injections_per_ff = 24;
    config.num_threads = 2;
    for (std::size_t i = 0; i < mac->netlist.num_flip_flops(); i += 7) {
      config.ff_subset.push_back(i);
    }
    return config;
  }

  static circuits::MacCore* mac;
  static circuits::MacTestbench* bench;
  static CampaignEngine* engine;
  static std::string* hash;
};

circuits::MacCore* MacShardFixture::mac = nullptr;
circuits::MacTestbench* MacShardFixture::bench = nullptr;
CampaignEngine* MacShardFixture::engine = nullptr;
std::string* MacShardFixture::hash = nullptr;

// ---- merge property: every N, every permutation -----------------------------

TEST_F(MacShardFixture, EveryPermutationMergesBitIdenticalToUnsharded) {
  const CampaignConfig config = base_config();
  const CampaignResult unsharded = engine->run(config);
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), config);

  for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{7}}) {
    const std::vector<CampaignPartial> partials =
        run_all_shards(*engine, config, *hash, count);

    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::size_t permutations = 0;
    do {
      std::vector<CampaignPartial> shuffled;
      shuffled.reserve(count);
      for (const std::size_t k : order) shuffled.push_back(partials[k]);
      const CampaignResult merged = merge_partials(shuffled);
      expect_result_identical(merged, unsharded);
      expect_science_identical(merged, flat);
      ++permutations;
      if (::testing::Test::HasFailure()) {
        FAIL() << "first failing permutation of N=" << count;
      }
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_GT(permutations, 0u);
  }
}

TEST_F(MacShardFixture, ShardSharesArePartialAndDisjoint) {
  // Pin the scalar width: at kAuto a wide host packs this whole campaign
  // into one or two passes, leaving nothing for shards 1 and 2 to own.
  CampaignConfig config = base_config();
  config.lane_width = sim::LaneWidth::k64;
  const std::vector<CampaignPartial> partials =
      run_all_shards(*engine, config, *hash, 3);
  std::uint64_t passes = 0;
  for (const CampaignPartial& partial : partials) {
    // Every shard did real, strictly partial work.
    EXPECT_GT(partial.result.total_sim_passes, 0u);
    EXPECT_LT(partial.result.total_injections,
              config.injections_per_ff * config.ff_subset.size());
    for (const FfResult& ff : partial.result.per_ff) {
      EXPECT_EQ(ff.classes.total(), ff.injections) << ff.name;
    }
    passes += partial.result.total_sim_passes;
  }
  EXPECT_EQ(passes, engine->run(config).total_sim_passes);
}

TEST_F(MacShardFixture, MergeHoldsAcrossModesWidthsAndThreads) {
  for (const ReplayMode mode :
       {ReplayMode::kFull, ReplayMode::kCheckpoint, ReplayMode::kIncremental}) {
    for (const sim::LaneWidth width :
         {sim::LaneWidth::k64, sim::LaneWidth::kAuto}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        CampaignConfig config = base_config();
        config.replay_mode = mode;
        config.lane_width = width;
        config.num_threads = threads;
        const CampaignResult unsharded = engine->run(config);
        const CampaignResult merged =
            merge_partials(run_all_shards(*engine, config, *hash, 3));
        expect_result_identical(merged, unsharded);
        if (::testing::Test::HasFailure()) {
          FAIL() << "mode=" << to_string(mode)
                 << " width=" << static_cast<int>(width)
                 << " threads=" << threads;
        }
      }
    }
  }
}

TEST_F(MacShardFixture, MoreShardsThanPassesLeavesEmptyShards) {
  CampaignConfig config;
  config.injections_per_ff = 16;
  config.ff_subset = {0, 1};  // 32 jobs: a single 64-lane pass
  config.lane_width = sim::LaneWidth::k64;
  const CampaignResult unsharded = engine->run(config);
  ASSERT_EQ(unsharded.total_sim_passes, 1u);
  const std::vector<CampaignPartial> partials =
      run_all_shards(*engine, config, *hash, 7);
  for (std::size_t k = 1; k < partials.size(); ++k) {
    EXPECT_EQ(partials[k].result.total_sim_passes, 0u) << "shard " << k;
    EXPECT_EQ(partials[k].result.total_injections, 0u) << "shard " << k;
  }
  expect_result_identical(merge_partials(partials), unsharded);
}

TEST_F(MacShardFixture, EngineRejectsInvalidShardSpec) {
  CampaignConfig config = base_config();
  config.shard = ShardSpec{0, 0};
  EXPECT_THROW((void)engine->run(config), std::invalid_argument);
  config.shard = ShardSpec{3, 3};
  EXPECT_THROW((void)engine->run(config), std::invalid_argument);
}

TEST_F(MacShardFixture, WarningsDeduplicatedOnMerge) {
  CampaignConfig config = base_config();
  config.lane_width = sim::LaneWidth::k64;
  config.blocks_per_pass = sim::kMaxLaneBlocksPerPass + 5;  // clamp warning
  const CampaignResult unsharded = engine->run(config);
  ASSERT_EQ(unsharded.warnings.size(), 1u);
  const std::vector<CampaignPartial> partials =
      run_all_shards(*engine, config, *hash, 3);
  for (const CampaignPartial& partial : partials) {
    EXPECT_EQ(partial.result.warnings, unsharded.warnings);
  }
  const CampaignResult merged = merge_partials(partials);
  // The fix under test: N shards each re-emit the same configuration
  // warning; the merge keeps one copy, not N.
  EXPECT_EQ(merged.warnings, unsharded.warnings);
  expect_result_identical(merged, unsharded);
}

// ---- merge validation -------------------------------------------------------

TEST_F(MacShardFixture, MergeRejectsInconsistentPartialSets) {
  CampaignConfig config = base_config();
  const std::vector<CampaignPartial> partials =
      run_all_shards(*engine, config, *hash, 3);

  EXPECT_THROW((void)merge_partials({}), std::runtime_error);

  // Missing shard: two partials of a 3-shard campaign.
  EXPECT_THROW((void)merge_partials({partials[0], partials[2]}),
               std::runtime_error);

  // Duplicated shard index.
  EXPECT_THROW((void)merge_partials({partials[0], partials[1], partials[1]}),
               std::runtime_error);

  // Foreign engine hash.
  {
    std::vector<CampaignPartial> tampered = partials;
    tampered[1].engine_hash = "0000000000000000ffffffffffffffff";
    EXPECT_THROW((void)merge_partials(tampered), std::runtime_error);
  }

  // Different campaign config (seed).
  {
    std::vector<CampaignPartial> tampered = partials;
    tampered[2].seed ^= 1;
    EXPECT_THROW((void)merge_partials(tampered), std::runtime_error);
  }

  // Shards of different campaigns must not mix even at matching N.
  {
    CampaignConfig other = config;
    other.injections_per_ff += 8;
    const std::vector<CampaignPartial> foreign =
        run_all_shards(*engine, other, *hash, 3);
    EXPECT_THROW(
        (void)merge_partials({partials[0], foreign[1], partials[2]}),
        std::runtime_error);
  }
}

// ---- partial serialization --------------------------------------------------

TEST_F(MacShardFixture, PartialRoundTripsThroughTextFormat) {
  CampaignConfig config = base_config();
  config.replay_mode = ReplayMode::kCheckpoint;
  config.seed = 0xFFFF'FFFF'FFFF'FFFFULL;  // exercise full 64-bit fields
  config.shard = ShardSpec{1, 3};
  const CampaignPartial original = run_shard(*engine, config, *hash);

  std::stringstream stream;
  original.save(stream);
  const CampaignPartial loaded = CampaignPartial::load(stream, "<roundtrip>");

  EXPECT_EQ(loaded.engine_hash, original.engine_hash);
  EXPECT_EQ(loaded.shard_index, original.shard_index);
  EXPECT_EQ(loaded.shard_count, original.shard_count);
  EXPECT_EQ(loaded.injections_per_ff, original.injections_per_ff);
  EXPECT_EQ(loaded.seed, original.seed);
  EXPECT_EQ(loaded.replay_mode, original.replay_mode);
  EXPECT_EQ(loaded.checkpoint_interval, original.checkpoint_interval);
  expect_result_identical(loaded.result, original.result);
  EXPECT_EQ(loaded.result.wall_seconds, original.result.wall_seconds);
}

TEST_F(MacShardFixture, PartialFileRoundTripAndMerge) {
  const auto dir =
      std::filesystem::temp_directory_path() / "ffr_shard_roundtrip";
  std::filesystem::remove_all(dir);
  CampaignConfig config = base_config();
  std::vector<CampaignPartial> reloaded;
  for (std::size_t k = 0; k < 3; ++k) {
    config.shard = ShardSpec{k, 3};
    const CampaignPartial partial = run_shard(*engine, config, *hash);
    const auto path = dir / partial_filename(k, 3);
    partial.save_file(path);
    reloaded.push_back(CampaignPartial::load_file(path));
  }
  config.shard = ShardSpec{};
  expect_result_identical(merge_partials(reloaded), engine->run(config));
  std::filesystem::remove_all(dir);
}

/// Expects `body` to throw a std::runtime_error whose message contains both
/// `source` and a "(at " position marker.
template <typename Body>
void expect_positioned_error(const Body& body, const std::string& source,
                             const std::string& fragment) {
  try {
    body();
    FAIL() << "expected a positioned std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(source), std::string::npos) << what;
    EXPECT_NE(what.find("(at "), std::string::npos) << what;
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
  }
}

TEST_F(MacShardFixture, LoadRejectsTruncatedCorruptAndWrongVersion) {
  CampaignConfig config = base_config();
  config.shard = ShardSpec{0, 2};
  const CampaignPartial partial = run_shard(*engine, config, *hash);
  std::stringstream reference;
  partial.save(reference);
  const std::string text = reference.str();

  // Truncation at any structural boundary is caught by a missing token or
  // the absent 'end' sentinel.
  for (const double fraction : {0.1, 0.5, 0.9}) {
    std::stringstream truncated(
        text.substr(0, static_cast<std::size_t>(text.size() * fraction)));
    EXPECT_THROW((void)CampaignPartial::load(truncated, "<truncated>"),
                 std::runtime_error);
  }
  {
    // Removing only the sentinel still fails, even though all data is there.
    std::stringstream no_end(text.substr(0, text.rfind("end")));
    expect_positioned_error(
        [&] { (void)CampaignPartial::load(no_end, "<no-end>"); }, "<no-end>",
        "end of stream");
  }
  {
    std::string corrupt = text;
    corrupt.replace(corrupt.find("counters"), 8, "cnutoers");
    std::stringstream is(corrupt);
    expect_positioned_error(
        [&] { (void)CampaignPartial::load(is, "<corrupt>"); }, "<corrupt>",
        "expected 'counters'");
  }
  {
    std::string wrong_version = text;
    wrong_version.replace(wrong_version.find("ffr-partial 1"), 13,
                          "ffr-partial 9");
    std::stringstream is(wrong_version);
    expect_positioned_error(
        [&] { (void)CampaignPartial::load(is, "<version>"); }, "<version>",
        "unsupported format version 9");
  }
  {
    std::stringstream is("ffr-model 1 ridge");
    expect_positioned_error([&] { (void)CampaignPartial::load(is, "<magic>"); },
                            "<magic>", "bad magic");
  }
  {
    // Class counts no longer summing to the row's injections.
    std::string inconsistent = text;
    const std::size_t pos = inconsistent.find("ffs");
    ASSERT_NE(pos, std::string::npos);
    // Bump the first per-FF injection count (first number after the ff
    // index on the first row) without touching the class counts.
    std::istringstream rows(inconsistent.substr(pos));
    std::string tag, count, ff_index, injections;
    rows >> tag >> count >> ff_index >> injections;
    const std::size_t row_pos =
        inconsistent.find(ff_index + ' ' + injections, pos);
    ASSERT_NE(row_pos, std::string::npos);
    inconsistent.replace(row_pos + ff_index.size() + 1, injections.size(),
                         std::to_string(std::stoull(injections) + 1));
    std::stringstream is(inconsistent);
    expect_positioned_error(
        [&] { (void)CampaignPartial::load(is, "<sums>"); }, "<sums>",
        "class counts sum to");
  }
}

// ---- resume-from-partial ----------------------------------------------------

struct ResumeFixture : public MacShardFixture {
  void SetUp() override {
    dir = std::filesystem::temp_directory_path() / "ffr_shard_resume";
    std::filesystem::remove_all(dir);
  }
  void TearDown() override { std::filesystem::remove_all(dir); }
  std::filesystem::path dir;
};

TEST_F(ResumeFixture, ResumeRerunsExactlyTheMissingShard) {
  CampaignConfig config = base_config();
  config.shard.count = 3;

  ResumeReport first;
  const CampaignResult merged =
      run_sharded_campaign(*engine, config, *hash, dir, &first);
  EXPECT_EQ(first.executed, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(first.resumed.empty());
  CampaignConfig unsharded = config;
  unsharded.shard = ShardSpec{};
  expect_result_identical(merged, engine->run(unsharded));

  // Crash simulation: shard 1's partial never made it to disk.
  const CampaignPartial shard1 =
      CampaignPartial::load_file(dir / partial_filename(1, 3));
  ASSERT_TRUE(std::filesystem::remove(dir / partial_filename(1, 3)));

  ResumeReport second;
  const CampaignResult resumed =
      run_sharded_campaign(*engine, config, *hash, dir, &second);
  EXPECT_EQ(second.resumed, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(second.executed, (std::vector<std::size_t>{1}));
  // Exactly shard 1's work was redone — pinned via the deterministic
  // counters of the partial that was deleted.
  EXPECT_EQ(second.passes_executed, shard1.result.total_sim_passes);
  EXPECT_EQ(second.cycles_executed, shard1.result.cycles_simulated);
  expect_result_identical(resumed, merged);

  // A third run resumes everything and simulates nothing.
  ResumeReport third;
  const CampaignResult all_resumed =
      run_sharded_campaign(*engine, config, *hash, dir, &third);
  EXPECT_EQ(third.resumed, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(third.executed.empty());
  EXPECT_EQ(third.passes_executed, 0u);
  EXPECT_EQ(third.cycles_executed, 0u);
  expect_result_identical(all_resumed, merged);
}

TEST_F(ResumeFixture, ResumeRejectsWrongContentHash) {
  CampaignConfig config = base_config();
  config.shard = ShardSpec{0, 2};
  const CampaignPartial partial =
      run_shard(*engine, config, "feedfacefeedfacefeedfacefeedface");
  partial.save_file(dir / partial_filename(0, 2));
  try {
    (void)load_or_run_shard(*engine, config, *hash, dir);
    FAIL() << "expected a content-hash mismatch error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("does not match"), std::string::npos) << what;
    EXPECT_NE(what.find("feedface"), std::string::npos) << what;
  }
}

TEST_F(ResumeFixture, ResumeRejectsForeignCampaignConfig) {
  CampaignConfig config = base_config();
  config.shard = ShardSpec{0, 2};
  const CampaignPartial partial = run_shard(*engine, config, *hash);
  partial.save_file(dir / partial_filename(0, 2));

  CampaignConfig other = config;
  other.injections_per_ff += 8;
  EXPECT_THROW((void)load_or_run_shard(*engine, other, *hash, dir),
               std::runtime_error);
}

TEST_F(ResumeFixture, ResumeRejectsPresentButCorruptPartial) {
  CampaignConfig config = base_config();
  config.shard = ShardSpec{0, 2};
  const auto path = dir / partial_filename(0, 2);
  std::filesystem::create_directories(dir);
  {
    std::ofstream os(path);
    os << "ffr-partial 1 campaign_shard\nengine abc\nshard 0 2\nconfig 24";
  }
  // Present-but-invalid partials must never be silently re-run: resuming
  // over them could merge science from a half-written file.
  expect_positioned_error(
      [&] { (void)load_or_run_shard(*engine, config, *hash, dir); },
      path.string(), "end of stream");
}

// ---- second circuit: the pipeline datapath ----------------------------------

TEST(PipelineShard, EveryPermutationMergesBitIdentical) {
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench =
      circuits::build_pipeline_testbench(core);
  const CampaignEngine engine(core.netlist, bench.tb);
  const std::string hash =
      service::content_hash(core.netlist, bench.tb).hex();

  CampaignConfig config;
  config.injections_per_ff = 20;
  config.num_threads = 2;
  const CampaignResult unsharded = engine.run(config);
  const CampaignResult flat =
      run_campaign(core.netlist, bench.tb, engine.golden(), config);

  for (const std::size_t count :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{7}}) {
    const std::vector<CampaignPartial> partials =
        run_all_shards(engine, config, hash, count);
    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    do {
      std::vector<CampaignPartial> shuffled;
      shuffled.reserve(count);
      for (const std::size_t k : order) shuffled.push_back(partials[k]);
      const CampaignResult merged = merge_partials(shuffled);
      expect_result_identical(merged, unsharded);
      expect_science_identical(merged, flat);
      if (::testing::Test::HasFailure()) {
        FAIL() << "first failing permutation of N=" << count;
      }
    } while (std::next_permutation(order.begin(), order.end()));
  }
}

}  // namespace
}  // namespace ffr::fault
