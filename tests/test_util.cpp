// Unit tests for src/util: RNG determinism and statistics, CSV round trips,
// thread pool correctness, table formatting.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"

namespace ffr::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    ASSERT_GE(u, -2.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Rng, LogUniformCoversDecades) {
  Rng rng(11);
  int low_decade = 0;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.log_uniform(1e-3, 1e3);
    ASSERT_GE(v, 1e-3);
    ASSERT_LE(v, 1e3 * (1 + 1e-9));
    if (v < 1.0) ++low_decade;
  }
  // Half the draws should land below the geometric midpoint.
  EXPECT_NEAR(low_decade, 500, 80);
}

TEST(Rng, LogUniformRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.log_uniform(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.log_uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, BelowIsUnbiasedOverSmallRange) {
  Rng rng(5);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(5)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 400);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(5);
  EXPECT_THROW((void)rng.below(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(17);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto i : sample) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(19);
  EXPECT_THROW((void)rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng rng(23);
  Rng child = rng.split();
  EXPECT_NE(rng(), child());
}

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(Csv, EscapeQuotesAndSeparators) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RoundTripDoubles) {
  const double value = 0.1234567890123456789;
  const std::string text = CsvWriter::format_double(value);
  EXPECT_EQ(std::stod(text), value);
}

TEST(Csv, ParseSimpleTable) {
  const auto table = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(table.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.rows[1][2], "6");
}

TEST(Csv, ParseQuotedFields) {
  const auto table = parse_csv("x,y\n\"a,b\",\"q\"\"q\"\n");
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.rows[0][0], "a,b");
  EXPECT_EQ(table.rows[0][1], "q\"q");
}

TEST(Csv, ParseCrLf) {
  const auto table = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.rows[0][1], "2");
}

TEST(Csv, ColumnAsDoubles) {
  const auto table = parse_csv("x,y\n1.5,2\n-3,4\n");
  EXPECT_EQ(table.column_as_doubles("x"), (std::vector<double>{1.5, -3.0}));
  EXPECT_THROW((void)table.column_as_doubles("z"), std::out_of_range);
}

TEST(Csv, FileRoundTrip) {
  CsvTable table;
  table.header = {"name", "value"};
  table.rows = {{"a", "1"}, {"b,c", "2.5"}};
  const auto path = std::filesystem::temp_directory_path() / "ffr_csv_test.csv";
  write_csv_file(path, table);
  const auto read_back = read_csv_file(path);
  EXPECT_EQ(read_back.header, table.header);
  EXPECT_EQ(read_back.rows, table.rows);
  std::filesystem::remove(path);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [&](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"Model", "R2"});
  table.add_row({"knn", "0.84"});
  table.add_row_numeric("svr", {0.8444}, 3);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("Model"), std::string::npos);
  EXPECT_NE(text.find("0.844"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

}  // namespace
}  // namespace ffr::util
