// Property-based differential suite for the SIMD lane-block campaign paths
// (sim/lane_block.hpp, sim/wide_sim.hpp, sim/wide_runner.hpp, the
// CampaignEngine width dispatch): every lane width (64 / 256 / 512) must be
// bit-identical to the flat 64-lane run_campaign() reference on seeded
// random circuits and on the MAC / pipeline cores, across every replay mode
// and thread count — the block width is a pure cost knob. Also covers
// tail-block masking (injection totals that only partially fill the last
// block), the knob-validation fallback (requests wider than the host's
// native width fall back with a recorded warning) and the CPUID dispatch
// helpers themselves. The relay-core width differential lives in
// test_relay_core.cpp under the "scale" label.
//
// The native width is pinned with force_native_lane_width_for_testing() so
// the assertions hold on any host: the vector-extension kernels are
// ISA-portable (GCC lowers them to whatever the build arch offers), only
// their speed varies, so forcing a width wider than the real CPU is safe.

#include <gtest/gtest.h>

#include <cstdint>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "circuits/random_circuit.hpp"
#include "fault/campaign.hpp"
#include "fault/engine.hpp"
#include "sim/lane_block.hpp"
#include "sim/runner.hpp"
#include "util/rng.hpp"

namespace ffr::fault {
namespace {

constexpr sim::LaneWidth kAllWidths[] = {
    sim::LaneWidth::k64, sim::LaneWidth::k256, sim::LaneWidth::k512};
constexpr ReplayMode kAllModes[] = {
    ReplayMode::kFull, ReplayMode::kCheckpoint, ReplayMode::kIncremental};

/// RAII pin of the detected native lane width; restores real CPU detection
/// on scope exit so tests cannot leak a forced width into each other.
struct ForcedNativeWidth {
  explicit ForcedNativeWidth(sim::LaneWidth width) {
    sim::force_native_lane_width_for_testing(width);
  }
  ~ForcedNativeWidth() {
    sim::force_native_lane_width_for_testing(sim::LaneWidth::kAuto);
  }
  ForcedNativeWidth(const ForcedNativeWidth&) = delete;
  ForcedNativeWidth& operator=(const ForcedNativeWidth&) = delete;
};

/// The engine's pass accounting must be internally consistent and must match
/// the deterministic schedule planner for the resolved (width, blocks) shape.
void expect_schedule_consistent(const CampaignResult& result,
                                const std::string& label) {
  const std::size_t width =
      result.lanes_per_pass / std::max<std::size_t>(1, result.blocks_per_pass);
  const std::vector<PlannedPass> schedule = build_pass_schedule(
      result.total_injections, width, result.blocks_per_pass);
  EXPECT_EQ(result.total_sim_passes, schedule.size()) << label;
  std::uint64_t histogram_passes = 0;
  for (const PassShapeCount& shape : result.pass_histogram) {
    histogram_passes += shape.passes;
  }
  EXPECT_EQ(histogram_passes, result.total_sim_passes) << label;
}

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b,
                          const std::string& label) {
  ASSERT_EQ(a.per_ff.size(), b.per_ff.size()) << label;
  for (std::size_t i = 0; i < a.per_ff.size(); ++i) {
    EXPECT_EQ(a.per_ff[i].ff_index, b.per_ff[i].ff_index) << label << " ff " << i;
    EXPECT_EQ(a.per_ff[i].injections, b.per_ff[i].injections)
        << label << " ff " << i;
    EXPECT_EQ(a.per_ff[i].classes.counts, b.per_ff[i].classes.counts)
        << label << " ff " << i << " (" << a.per_ff[i].name << ")";
  }
  const auto fdr_a = a.fdr_vector();
  const auto fdr_b = b.fdr_vector();
  ASSERT_EQ(fdr_a.size(), fdr_b.size()) << label;
  for (std::size_t i = 0; i < fdr_a.size(); ++i) {
    // Bit-exact, not approximately equal: both sides divide identical
    // integer counts.
    EXPECT_EQ(fdr_a[i], fdr_b[i]) << label << " ff " << i;
  }
  EXPECT_EQ(a.total_injections, b.total_injections) << label;
}

std::string case_label(sim::LaneWidth width, ReplayMode mode,
                       std::size_t threads) {
  return std::string("width=") + sim::to_string(width) + " mode=" +
         to_string(mode) + " threads=" + std::to_string(threads);
}

// ---- synthetic testbench over random netlists -----------------------------------
//
// build_random_circuit() emits a bare netlist, so the suite synthesizes its
// own workload: random primary-input waveforms, one registered loopback and
// a packet monitor wired to twelve primary outputs (valid/sop/eop/err plus
// 8 data bits). The monitored "frames" are whatever the random logic
// produces — meaningless as packets, but both campaign implementations
// classify the identical stream, which is all a differential test needs.

constexpr std::size_t kRandomBenchCycles = 48;

circuits::RandomCircuitConfig random_config_for_seed(std::uint64_t seed) {
  circuits::RandomCircuitConfig config;
  config.seed = seed;
  config.num_inputs = 3 + seed % 4;
  config.num_outputs = 12;  // monitor needs valid/sop/eop/err + 8 data nets
  config.num_gates = 30 + 11 * (seed % 6);
  config.num_flip_flops = 4 + seed % 9;
  return config;
}

sim::Testbench make_random_testbench(const netlist::Netlist& nl,
                                     std::uint64_t seed) {
  sim::Testbench tb;
  tb.stimulus = sim::Stimulus(nl.primary_inputs().size(), kRandomBenchCycles);
  util::Rng rng(seed * 1013 + 17);
  for (std::size_t pi = 0; pi < nl.primary_inputs().size(); ++pi) {
    for (std::size_t cycle = 0; cycle < kRandomBenchCycles; ++cycle) {
      tb.stimulus.set(pi, cycle, rng.bernoulli(0.5));
    }
  }
  const auto& pos = nl.primary_outputs();
  tb.monitor.valid = pos[0];
  tb.monitor.sop = pos[1];
  tb.monitor.eop = pos[2];
  tb.monitor.err = pos[3];
  tb.monitor.data.assign(pos.begin() + 4, pos.begin() + 12);
  // One registered loopback so the wide runner's loopback capture/apply path
  // is exercised on every random shape.
  tb.loopbacks.push_back({pos[0], nl.primary_inputs()[0], false});
  tb.inject_begin = 2;
  tb.inject_end = kRandomBenchCycles - 4;
  return tb;
}

// ---- random-circuit sweep: every width x mode x thread count --------------------

class RandomLaneWidthSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLaneWidthSweep, AllWidthsMatchFlatReference) {
  const ForcedNativeWidth pin(sim::LaneWidth::k512);
  const netlist::Netlist nl =
      circuits::build_random_circuit(random_config_for_seed(GetParam()));
  const sim::Testbench tb = make_random_testbench(nl, GetParam());
  CampaignEngine engine(nl, tb);

  CampaignConfig base;
  base.injections_per_ff = 131;  // not a lane-count multiple: ragged tails
  base.seed = 0xBEEF + GetParam();
  base.checkpoint_interval = 8;

  const CampaignResult flat = run_campaign(nl, tb, engine.golden(), base);

  for (const sim::LaneWidth width : kAllWidths) {
    for (const ReplayMode mode : kAllModes) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
        CampaignConfig config = base;
        config.lane_width = width;
        config.replay_mode = mode;
        config.num_threads = threads;
        const CampaignResult result = engine.run(config);
        const std::string label = case_label(width, mode, threads);
        EXPECT_EQ(result.lanes_per_pass,
                  sim::lanes_of(width) * result.blocks_per_pass)
            << label;
        if (width == sim::LaneWidth::k64) {
          // Auto blocks never widen the scalar reference path.
          EXPECT_EQ(result.blocks_per_pass, 1u) << label;
        }
        EXPECT_TRUE(result.warnings.empty()) << label;
        expect_schedule_consistent(result, label);
        expect_bit_identical(flat, result, label);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLaneWidthSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---- MAC core: the paper's circuit ----------------------------------------------

struct MacLaneWidthFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    circuits::MacConfig mc;
    mc.tx_depth_log2 = 3;
    mc.rx_depth_log2 = 3;
    mac = new circuits::MacCore(circuits::build_mac_core(mc));
    circuits::MacTestbenchConfig tbc;
    tbc.num_frames = 3;
    tbc.min_payload = 8;
    tbc.max_payload = 16;
    tbc.seed = 5;
    bench = new circuits::MacTestbench(circuits::build_mac_testbench(*mac, tbc));
    engine = new CampaignEngine(mac->netlist, bench->tb);
  }
  static void TearDownTestSuite() {
    delete engine;
    engine = nullptr;
    delete bench;
    bench = nullptr;
    delete mac;
    mac = nullptr;
  }
  static circuits::MacCore* mac;
  static circuits::MacTestbench* bench;
  static CampaignEngine* engine;
};

circuits::MacCore* MacLaneWidthFixture::mac = nullptr;
circuits::MacTestbench* MacLaneWidthFixture::bench = nullptr;
CampaignEngine* MacLaneWidthFixture::engine = nullptr;

TEST_F(MacLaneWidthFixture, AllWidthsMatchFlatAcrossModes) {
  const ForcedNativeWidth pin(sim::LaneWidth::k512);
  CampaignConfig base;
  base.injections_per_ff = 24;
  for (std::size_t i = 0; i < mac->netlist.num_flip_flops(); i += 7) {
    base.ff_subset.push_back(i);
  }
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), base);
  for (const sim::LaneWidth width : kAllWidths) {
    for (const ReplayMode mode : kAllModes) {
      CampaignConfig config = base;
      config.lane_width = width;
      config.replay_mode = mode;
      const CampaignResult result = engine->run(config);
      const std::string label = case_label(width, mode, 0);
      EXPECT_EQ(result.lanes_per_pass,
                sim::lanes_of(width) * result.blocks_per_pass)
          << label;
      expect_schedule_consistent(result, label);
      expect_bit_identical(flat, result, label);
    }
  }
}

TEST_F(MacLaneWidthFixture, TailBlockMaskingAt512) {
  // 600 injections into one flip-flop at a single 512-lane block: one full
  // 512-lane pass, and the 88-job tail is re-sliced into two scalar passes
  // (64 + 24 live lanes) instead of one mostly-masked 512-lane pass. Idle
  // lanes must not perturb the live ones.
  const ForcedNativeWidth pin(sim::LaneWidth::k512);
  CampaignConfig config;
  config.injections_per_ff = 600;
  config.ff_subset = {11};
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), config);
  config.lane_width = sim::LaneWidth::k512;
  config.blocks_per_pass = 1;
  const CampaignResult wide = engine->run(config);
  EXPECT_EQ(wide.total_injections, 600u);
  EXPECT_EQ(wide.total_sim_passes, 3u);
  ASSERT_EQ(wide.pass_histogram.size(), 2u);
  EXPECT_EQ(wide.pass_histogram[0].width, 512u);
  EXPECT_EQ(wide.pass_histogram[0].passes, 1u);
  EXPECT_EQ(wide.pass_histogram[1].width, 64u);
  EXPECT_EQ(wide.pass_histogram[1].passes, 2u);
  EXPECT_EQ(flat.total_sim_passes, 10u);  // ceil(600 / 64)
  expect_bit_identical(flat, wide, "tail-block 600@512");
}

TEST_F(MacLaneWidthFixture, TailBlockMaskingAt256) {
  // 257 = 256 + 1: the full 256-lane pass is followed by a 64-lane tail
  // pass carrying a single live lane (adaptive re-slice of the tail).
  const ForcedNativeWidth pin(sim::LaneWidth::k512);
  CampaignConfig config;
  config.injections_per_ff = 257;
  config.ff_subset = {4};
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), config);
  config.lane_width = sim::LaneWidth::k256;
  config.blocks_per_pass = 1;
  const CampaignResult wide = engine->run(config);
  EXPECT_EQ(wide.total_sim_passes, 2u);
  ASSERT_EQ(wide.pass_histogram.size(), 2u);
  EXPECT_EQ(wide.pass_histogram[0].width, 256u);
  EXPECT_EQ(wide.pass_histogram[1].width, 64u);
  expect_bit_identical(flat, wide, "tail-block 257@256");
}

// ---- multi-block passes: blocks_per_pass sweeps with ragged tails ---------------

TEST_F(MacLaneWidthFixture, MultiBlockRaggedTailsMatchFlat) {
  // Every SIMD width x explicit block count (including the non-power-of-two
  // 3) x replay mode, at an injection total that leaves a ragged multi-word
  // tail — all bit-identical to the flat reference, with the engine's pass
  // accounting matching the deterministic planner.
  const ForcedNativeWidth pin(sim::LaneWidth::k512);
  CampaignConfig base;
  base.injections_per_ff = 90;  // 5 FFs x 90 = 450 jobs: ragged everywhere
  base.ff_subset = {0, 3, 7, 12, 19};
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), base);
  for (const sim::LaneWidth width : kAllWidths) {
    for (const std::size_t blocks :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
      for (const ReplayMode mode : kAllModes) {
        CampaignConfig config = base;
        config.lane_width = width;
        config.blocks_per_pass = blocks;
        config.replay_mode = mode;
        const CampaignResult result = engine->run(config);
        const std::string label =
            case_label(width, mode, 0) + " blocks=" + std::to_string(blocks);
        EXPECT_EQ(result.blocks_per_pass, blocks) << label;
        EXPECT_EQ(result.lanes_per_pass, sim::lanes_of(width) * blocks)
            << label;
        EXPECT_TRUE(result.warnings.empty()) << label;
        expect_schedule_consistent(result, label);
        expect_bit_identical(flat, result, label);
      }
    }
  }
}

TEST_F(MacLaneWidthFixture, BlocksBeyondMaximumClampWithWarning) {
  const ForcedNativeWidth pin(sim::LaneWidth::k256);
  CampaignConfig config;
  config.injections_per_ff = 20;
  config.ff_subset = {1, 6};
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), config);
  config.lane_width = sim::LaneWidth::k256;
  config.blocks_per_pass = sim::kMaxLaneBlocksPerPass + 5;
  const CampaignResult result = engine->run(config);
  EXPECT_EQ(result.blocks_per_pass, sim::kMaxLaneBlocksPerPass);
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("clamped"), std::string::npos)
      << result.warnings[0];
  expect_bit_identical(flat, result, "clamped blocks");
}

// ---- knob validation: requests wider than the host fall back --------------------

TEST_F(MacLaneWidthFixture, WiderThanHostFallsBackWithWarning) {
  const ForcedNativeWidth pin(sim::LaneWidth::k64);
  CampaignConfig config;
  config.injections_per_ff = 20;
  config.ff_subset = {0, 5, 9};
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), config);
  for (const sim::LaneWidth requested :
       {sim::LaneWidth::k256, sim::LaneWidth::k512}) {
    CampaignConfig wide = config;
    wide.lane_width = requested;
    const CampaignResult result = engine->run(wide);
    const std::string label = std::string("requested ") + sim::to_string(requested);
    EXPECT_EQ(result.lanes_per_pass, 64u) << label;
    ASSERT_EQ(result.warnings.size(), 1u) << label;
    EXPECT_NE(result.warnings[0].find(sim::to_string(requested)),
              std::string::npos)
        << label << ": " << result.warnings[0];
    EXPECT_NE(result.warnings[0].find("falling back"), std::string::npos)
        << label << ": " << result.warnings[0];
    expect_bit_identical(flat, result, label);
  }
}

TEST_F(MacLaneWidthFixture, HonouredRequestsCarryNoWarning) {
  const ForcedNativeWidth pin(sim::LaneWidth::k256);
  CampaignConfig config;
  config.injections_per_ff = 12;
  config.ff_subset = {2, 8};
  for (const sim::LaneWidth requested :
       {sim::LaneWidth::kAuto, sim::LaneWidth::k64, sim::LaneWidth::k256}) {
    config.lane_width = requested;
    const CampaignResult result = engine->run(config);
    // kAuto resolves to the pinned native 256; lanes_per_pass additionally
    // carries the auto-resolved block count (1 on the 64-lane path).
    const std::size_t expected_width =
        requested == sim::LaneWidth::k64 ? 64u : 256u;
    if (requested == sim::LaneWidth::k64) {
      EXPECT_EQ(result.blocks_per_pass, 1u) << sim::to_string(requested);
    }
    EXPECT_EQ(result.lanes_per_pass, expected_width * result.blocks_per_pass)
        << sim::to_string(requested);
    EXPECT_TRUE(result.warnings.empty()) << sim::to_string(requested);
  }
}

// ---- the deterministic pass planner itself --------------------------------------

TEST(BuildPassSchedule, SeventyJobTailRunsAsTwoScalarPasses) {
  // The motivating example: a 70-job tail at full shape 512x1 runs as two
  // 64-lane passes (64 + 6 live) instead of one mostly-masked 512.
  const auto schedule = build_pass_schedule(70, 512, 1);
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0].width, 64u);
  EXPECT_EQ(schedule[0].blocks, 1u);
  EXPECT_EQ(schedule[0].job_begin, 0u);
  EXPECT_EQ(schedule[0].job_end, 64u);
  EXPECT_EQ(schedule[1].width, 64u);
  EXPECT_EQ(schedule[1].job_begin, 64u);
  EXPECT_EQ(schedule[1].job_end, 70u);
}

TEST(BuildPassSchedule, ScalarReferenceShapeIsNeverResliced) {
  // full shape 64x1 must degenerate to exactly ceil(jobs / 64) passes so the
  // pinned pre-adaptive pass counts stay byte-identical.
  for (const std::size_t jobs : {1u, 63u, 64u, 65u, 1000u, 179180u}) {
    const auto schedule = build_pass_schedule(jobs, 64, 1);
    EXPECT_EQ(schedule.size(), (jobs + 63) / 64) << jobs;
    for (const PlannedPass& pass : schedule) {
      EXPECT_EQ(pass.width, 64u);
      EXPECT_EQ(pass.blocks, 1u);
    }
  }
}

TEST(BuildPassSchedule, PartitionsJobsContiguouslyWithOneMaskedPassAtMost) {
  for (const std::size_t full_width : {64u, 256u, 512u}) {
    for (const std::size_t full_blocks : {1u, 2u, 3u, 8u}) {
      for (const std::size_t jobs : {1u, 70u, 257u, 600u, 1023u, 4097u}) {
        const auto schedule = build_pass_schedule(jobs, full_width, full_blocks);
        const std::string label = std::to_string(jobs) + " jobs @ " +
                                  std::to_string(full_width) + "x" +
                                  std::to_string(full_blocks);
        std::size_t cursor = 0;
        std::size_t masked = 0;
        for (const PlannedPass& pass : schedule) {
          EXPECT_EQ(pass.job_begin, cursor) << label;
          EXPECT_GT(pass.job_end, pass.job_begin) << label;
          EXPECT_LE(pass.job_end - pass.job_begin, pass.width * pass.blocks)
              << label;
          EXPECT_LE(pass.width * pass.blocks, full_width * full_blocks) << label;
          if (pass.job_end - pass.job_begin < pass.width * pass.blocks) ++masked;
          cursor = pass.job_end;
        }
        EXPECT_EQ(cursor, jobs) << label;
        EXPECT_LE(masked, 1u) << label;
        if (masked == 1) {
          EXPECT_LT(schedule.back().job_end - schedule.back().job_begin,
                    schedule.back().width * schedule.back().blocks)
              << label << ": only the final pass may be masked";
        }
      }
    }
  }
}

TEST(BuildPassSchedule, FullMultiBlockPassesThenNarrowerTail) {
  // 1100 jobs at 512x2: one full 1024-lane pass, then the 76-job tail fits
  // one two-block scalar-width pass (2 x 64 lanes) exactly.
  const auto schedule = build_pass_schedule(1100, 512, 2);
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0].width, 512u);
  EXPECT_EQ(schedule[0].blocks, 2u);
  EXPECT_EQ(schedule[0].job_end, 1024u);
  EXPECT_EQ(schedule[1].width, 64u);
  EXPECT_EQ(schedule[1].blocks, 2u);
  EXPECT_EQ(schedule[1].job_end, 1100u);
}

// ---- pipeline core --------------------------------------------------------------

TEST(PipelineLaneWidth, AllWidthsMatchFlatAcrossModes) {
  const ForcedNativeWidth pin(sim::LaneWidth::k512);
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench =
      circuits::build_pipeline_testbench(core);
  CampaignEngine engine(core.netlist, bench.tb);
  CampaignConfig base;
  base.injections_per_ff = 18;
  const CampaignResult flat =
      run_campaign(core.netlist, bench.tb, engine.golden(), base);
  for (const sim::LaneWidth width : kAllWidths) {
    for (const ReplayMode mode : kAllModes) {
      CampaignConfig config = base;
      config.lane_width = width;
      config.replay_mode = mode;
      const CampaignResult result = engine.run(config);
      expect_bit_identical(flat, result, case_label(width, mode, 0));
    }
  }
}

// ---- dispatch helpers -----------------------------------------------------------

TEST(LaneWidthDispatch, NativeDetectionIsSane) {
  // No forcing: whatever CPUID reports must be one of the three real widths,
  // and kAuto must resolve to it without a warning.
  const sim::LaneWidth native = sim::native_lane_width();
  EXPECT_TRUE(native == sim::LaneWidth::k64 || native == sim::LaneWidth::k256 ||
              native == sim::LaneWidth::k512);
  const sim::ResolvedLaneWidth resolved =
      sim::resolve_lane_width(sim::LaneWidth::kAuto);
  EXPECT_EQ(resolved.width, native);
  EXPECT_TRUE(resolved.warning.empty());
}

TEST(LaneWidthDispatch, ForcedWidthOverridesAndRestores) {
  {
    const ForcedNativeWidth pin(sim::LaneWidth::k256);
    EXPECT_EQ(sim::native_lane_width(), sim::LaneWidth::k256);
    EXPECT_EQ(sim::resolve_lane_width(sim::LaneWidth::k512).width,
              sim::LaneWidth::k256);
    EXPECT_FALSE(
        sim::resolve_lane_width(sim::LaneWidth::k512).warning.empty());
  }
  // Guard destroyed: real detection is back.
  EXPECT_EQ(sim::native_lane_width(), sim::native_lane_width());
  EXPECT_TRUE(sim::resolve_lane_width(sim::LaneWidth::kAuto).warning.empty());
}

TEST(LaneWidthDispatch, LanesOfAndToString) {
  EXPECT_EQ(sim::lanes_of(sim::LaneWidth::k64), 64u);
  EXPECT_EQ(sim::lanes_of(sim::LaneWidth::k256), 256u);
  EXPECT_EQ(sim::lanes_of(sim::LaneWidth::k512), 512u);
  EXPECT_EQ(sim::lanes_of(sim::LaneWidth::kAuto), 0u);
  EXPECT_STREQ(sim::to_string(sim::LaneWidth::k512), "512");
  EXPECT_STREQ(sim::to_string(sim::LaneWidth::kAuto), "auto");
}

}  // namespace
}  // namespace ffr::fault
