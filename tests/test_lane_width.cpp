// Property-based differential suite for the SIMD lane-block campaign paths
// (sim/lane_block.hpp, sim/wide_sim.hpp, sim/wide_runner.hpp, the
// CampaignEngine width dispatch): every lane width (64 / 256 / 512) must be
// bit-identical to the flat 64-lane run_campaign() reference on seeded
// random circuits and on the MAC / pipeline cores, across every replay mode
// and thread count — the block width is a pure cost knob. Also covers
// tail-block masking (injection totals that only partially fill the last
// block), the knob-validation fallback (requests wider than the host's
// native width fall back with a recorded warning) and the CPUID dispatch
// helpers themselves. The relay-core width differential lives in
// test_relay_core.cpp under the "scale" label.
//
// The native width is pinned with force_native_lane_width_for_testing() so
// the assertions hold on any host: the vector-extension kernels are
// ISA-portable (GCC lowers them to whatever the build arch offers), only
// their speed varies, so forcing a width wider than the real CPU is safe.

#include <gtest/gtest.h>

#include <cstdint>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "circuits/random_circuit.hpp"
#include "fault/campaign.hpp"
#include "fault/engine.hpp"
#include "sim/lane_block.hpp"
#include "sim/runner.hpp"
#include "util/rng.hpp"

namespace ffr::fault {
namespace {

constexpr sim::LaneWidth kAllWidths[] = {
    sim::LaneWidth::k64, sim::LaneWidth::k256, sim::LaneWidth::k512};
constexpr ReplayMode kAllModes[] = {
    ReplayMode::kFull, ReplayMode::kCheckpoint, ReplayMode::kIncremental};

/// RAII pin of the detected native lane width; restores real CPU detection
/// on scope exit so tests cannot leak a forced width into each other.
struct ForcedNativeWidth {
  explicit ForcedNativeWidth(sim::LaneWidth width) {
    sim::force_native_lane_width_for_testing(width);
  }
  ~ForcedNativeWidth() {
    sim::force_native_lane_width_for_testing(sim::LaneWidth::kAuto);
  }
  ForcedNativeWidth(const ForcedNativeWidth&) = delete;
  ForcedNativeWidth& operator=(const ForcedNativeWidth&) = delete;
};

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b,
                          const std::string& label) {
  ASSERT_EQ(a.per_ff.size(), b.per_ff.size()) << label;
  for (std::size_t i = 0; i < a.per_ff.size(); ++i) {
    EXPECT_EQ(a.per_ff[i].ff_index, b.per_ff[i].ff_index) << label << " ff " << i;
    EXPECT_EQ(a.per_ff[i].injections, b.per_ff[i].injections)
        << label << " ff " << i;
    EXPECT_EQ(a.per_ff[i].classes.counts, b.per_ff[i].classes.counts)
        << label << " ff " << i << " (" << a.per_ff[i].name << ")";
  }
  const auto fdr_a = a.fdr_vector();
  const auto fdr_b = b.fdr_vector();
  ASSERT_EQ(fdr_a.size(), fdr_b.size()) << label;
  for (std::size_t i = 0; i < fdr_a.size(); ++i) {
    // Bit-exact, not approximately equal: both sides divide identical
    // integer counts.
    EXPECT_EQ(fdr_a[i], fdr_b[i]) << label << " ff " << i;
  }
  EXPECT_EQ(a.total_injections, b.total_injections) << label;
}

std::string case_label(sim::LaneWidth width, ReplayMode mode,
                       std::size_t threads) {
  return std::string("width=") + sim::to_string(width) + " mode=" +
         to_string(mode) + " threads=" + std::to_string(threads);
}

// ---- synthetic testbench over random netlists -----------------------------------
//
// build_random_circuit() emits a bare netlist, so the suite synthesizes its
// own workload: random primary-input waveforms, one registered loopback and
// a packet monitor wired to twelve primary outputs (valid/sop/eop/err plus
// 8 data bits). The monitored "frames" are whatever the random logic
// produces — meaningless as packets, but both campaign implementations
// classify the identical stream, which is all a differential test needs.

constexpr std::size_t kRandomBenchCycles = 48;

circuits::RandomCircuitConfig random_config_for_seed(std::uint64_t seed) {
  circuits::RandomCircuitConfig config;
  config.seed = seed;
  config.num_inputs = 3 + seed % 4;
  config.num_outputs = 12;  // monitor needs valid/sop/eop/err + 8 data nets
  config.num_gates = 30 + 11 * (seed % 6);
  config.num_flip_flops = 4 + seed % 9;
  return config;
}

sim::Testbench make_random_testbench(const netlist::Netlist& nl,
                                     std::uint64_t seed) {
  sim::Testbench tb;
  tb.stimulus = sim::Stimulus(nl.primary_inputs().size(), kRandomBenchCycles);
  util::Rng rng(seed * 1013 + 17);
  for (std::size_t pi = 0; pi < nl.primary_inputs().size(); ++pi) {
    for (std::size_t cycle = 0; cycle < kRandomBenchCycles; ++cycle) {
      tb.stimulus.set(pi, cycle, rng.bernoulli(0.5));
    }
  }
  const auto& pos = nl.primary_outputs();
  tb.monitor.valid = pos[0];
  tb.monitor.sop = pos[1];
  tb.monitor.eop = pos[2];
  tb.monitor.err = pos[3];
  tb.monitor.data.assign(pos.begin() + 4, pos.begin() + 12);
  // One registered loopback so the wide runner's loopback capture/apply path
  // is exercised on every random shape.
  tb.loopbacks.push_back({pos[0], nl.primary_inputs()[0], false});
  tb.inject_begin = 2;
  tb.inject_end = kRandomBenchCycles - 4;
  return tb;
}

// ---- random-circuit sweep: every width x mode x thread count --------------------

class RandomLaneWidthSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLaneWidthSweep, AllWidthsMatchFlatReference) {
  const ForcedNativeWidth pin(sim::LaneWidth::k512);
  const netlist::Netlist nl =
      circuits::build_random_circuit(random_config_for_seed(GetParam()));
  const sim::Testbench tb = make_random_testbench(nl, GetParam());
  CampaignEngine engine(nl, tb);

  CampaignConfig base;
  base.injections_per_ff = 37;  // not a lane-count multiple: tail lanes idle
  base.seed = 0xBEEF + GetParam();
  base.checkpoint_interval = 8;

  const CampaignResult flat = run_campaign(nl, tb, engine.golden(), base);

  for (const sim::LaneWidth width : kAllWidths) {
    for (const ReplayMode mode : kAllModes) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
        CampaignConfig config = base;
        config.lane_width = width;
        config.replay_mode = mode;
        config.num_threads = threads;
        const CampaignResult result = engine.run(config);
        const std::string label = case_label(width, mode, threads);
        EXPECT_EQ(result.lanes_per_pass, sim::lanes_of(width)) << label;
        EXPECT_TRUE(result.warnings.empty()) << label;
        EXPECT_EQ(result.total_sim_passes,
                  (result.total_injections + result.lanes_per_pass - 1) /
                      result.lanes_per_pass)
            << label;
        expect_bit_identical(flat, result, label);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLaneWidthSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---- MAC core: the paper's circuit ----------------------------------------------

struct MacLaneWidthFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    circuits::MacConfig mc;
    mc.tx_depth_log2 = 3;
    mc.rx_depth_log2 = 3;
    mac = new circuits::MacCore(circuits::build_mac_core(mc));
    circuits::MacTestbenchConfig tbc;
    tbc.num_frames = 3;
    tbc.min_payload = 8;
    tbc.max_payload = 16;
    tbc.seed = 5;
    bench = new circuits::MacTestbench(circuits::build_mac_testbench(*mac, tbc));
    engine = new CampaignEngine(mac->netlist, bench->tb);
  }
  static void TearDownTestSuite() {
    delete engine;
    engine = nullptr;
    delete bench;
    bench = nullptr;
    delete mac;
    mac = nullptr;
  }
  static circuits::MacCore* mac;
  static circuits::MacTestbench* bench;
  static CampaignEngine* engine;
};

circuits::MacCore* MacLaneWidthFixture::mac = nullptr;
circuits::MacTestbench* MacLaneWidthFixture::bench = nullptr;
CampaignEngine* MacLaneWidthFixture::engine = nullptr;

TEST_F(MacLaneWidthFixture, AllWidthsMatchFlatAcrossModes) {
  const ForcedNativeWidth pin(sim::LaneWidth::k512);
  CampaignConfig base;
  base.injections_per_ff = 24;
  for (std::size_t i = 0; i < mac->netlist.num_flip_flops(); i += 7) {
    base.ff_subset.push_back(i);
  }
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), base);
  for (const sim::LaneWidth width : kAllWidths) {
    for (const ReplayMode mode : kAllModes) {
      CampaignConfig config = base;
      config.lane_width = width;
      config.replay_mode = mode;
      const CampaignResult result = engine->run(config);
      const std::string label = case_label(width, mode, 0);
      EXPECT_EQ(result.lanes_per_pass, sim::lanes_of(width)) << label;
      expect_bit_identical(flat, result, label);
    }
  }
}

TEST_F(MacLaneWidthFixture, TailBlockMaskingAt512) {
  // 257 injections into one flip-flop at width 512: a single pass whose
  // last 255 lanes are idle. Idle lanes must not perturb the 257 live ones.
  const ForcedNativeWidth pin(sim::LaneWidth::k512);
  CampaignConfig config;
  config.injections_per_ff = 257;
  config.ff_subset = {11};
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), config);
  config.lane_width = sim::LaneWidth::k512;
  const CampaignResult wide = engine->run(config);
  EXPECT_EQ(wide.total_injections, 257u);
  EXPECT_EQ(wide.total_sim_passes, 1u);
  EXPECT_EQ(flat.total_sim_passes, 5u);  // ceil(257 / 64)
  expect_bit_identical(flat, wide, "tail-block 257@512");
}

TEST_F(MacLaneWidthFixture, TailBlockMaskingAt256) {
  // 257 = 256 + 1: the second width-256 pass carries a single live lane.
  const ForcedNativeWidth pin(sim::LaneWidth::k512);
  CampaignConfig config;
  config.injections_per_ff = 257;
  config.ff_subset = {4};
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), config);
  config.lane_width = sim::LaneWidth::k256;
  const CampaignResult wide = engine->run(config);
  EXPECT_EQ(wide.total_sim_passes, 2u);
  expect_bit_identical(flat, wide, "tail-block 257@256");
}

// ---- knob validation: requests wider than the host fall back --------------------

TEST_F(MacLaneWidthFixture, WiderThanHostFallsBackWithWarning) {
  const ForcedNativeWidth pin(sim::LaneWidth::k64);
  CampaignConfig config;
  config.injections_per_ff = 20;
  config.ff_subset = {0, 5, 9};
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), config);
  for (const sim::LaneWidth requested :
       {sim::LaneWidth::k256, sim::LaneWidth::k512}) {
    CampaignConfig wide = config;
    wide.lane_width = requested;
    const CampaignResult result = engine->run(wide);
    const std::string label = std::string("requested ") + sim::to_string(requested);
    EXPECT_EQ(result.lanes_per_pass, 64u) << label;
    ASSERT_EQ(result.warnings.size(), 1u) << label;
    EXPECT_NE(result.warnings[0].find(sim::to_string(requested)),
              std::string::npos)
        << label << ": " << result.warnings[0];
    EXPECT_NE(result.warnings[0].find("falling back"), std::string::npos)
        << label << ": " << result.warnings[0];
    expect_bit_identical(flat, result, label);
  }
}

TEST_F(MacLaneWidthFixture, HonouredRequestsCarryNoWarning) {
  const ForcedNativeWidth pin(sim::LaneWidth::k256);
  CampaignConfig config;
  config.injections_per_ff = 12;
  config.ff_subset = {2, 8};
  for (const sim::LaneWidth requested :
       {sim::LaneWidth::kAuto, sim::LaneWidth::k64, sim::LaneWidth::k256}) {
    config.lane_width = requested;
    const CampaignResult result = engine->run(config);
    const std::size_t expected =
        requested == sim::LaneWidth::k64 ? 64u : 256u;  // kAuto -> native 256
    EXPECT_EQ(result.lanes_per_pass, expected) << sim::to_string(requested);
    EXPECT_TRUE(result.warnings.empty()) << sim::to_string(requested);
  }
}

// ---- pipeline core --------------------------------------------------------------

TEST(PipelineLaneWidth, AllWidthsMatchFlatAcrossModes) {
  const ForcedNativeWidth pin(sim::LaneWidth::k512);
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench =
      circuits::build_pipeline_testbench(core);
  CampaignEngine engine(core.netlist, bench.tb);
  CampaignConfig base;
  base.injections_per_ff = 18;
  const CampaignResult flat =
      run_campaign(core.netlist, bench.tb, engine.golden(), base);
  for (const sim::LaneWidth width : kAllWidths) {
    for (const ReplayMode mode : kAllModes) {
      CampaignConfig config = base;
      config.lane_width = width;
      config.replay_mode = mode;
      const CampaignResult result = engine.run(config);
      expect_bit_identical(flat, result, case_label(width, mode, 0));
    }
  }
}

// ---- dispatch helpers -----------------------------------------------------------

TEST(LaneWidthDispatch, NativeDetectionIsSane) {
  // No forcing: whatever CPUID reports must be one of the three real widths,
  // and kAuto must resolve to it without a warning.
  const sim::LaneWidth native = sim::native_lane_width();
  EXPECT_TRUE(native == sim::LaneWidth::k64 || native == sim::LaneWidth::k256 ||
              native == sim::LaneWidth::k512);
  const sim::ResolvedLaneWidth resolved =
      sim::resolve_lane_width(sim::LaneWidth::kAuto);
  EXPECT_EQ(resolved.width, native);
  EXPECT_TRUE(resolved.warning.empty());
}

TEST(LaneWidthDispatch, ForcedWidthOverridesAndRestores) {
  {
    const ForcedNativeWidth pin(sim::LaneWidth::k256);
    EXPECT_EQ(sim::native_lane_width(), sim::LaneWidth::k256);
    EXPECT_EQ(sim::resolve_lane_width(sim::LaneWidth::k512).width,
              sim::LaneWidth::k256);
    EXPECT_FALSE(
        sim::resolve_lane_width(sim::LaneWidth::k512).warning.empty());
  }
  // Guard destroyed: real detection is back.
  EXPECT_EQ(sim::native_lane_width(), sim::native_lane_width());
  EXPECT_TRUE(sim::resolve_lane_width(sim::LaneWidth::kAuto).warning.empty());
}

TEST(LaneWidthDispatch, LanesOfAndToString) {
  EXPECT_EQ(sim::lanes_of(sim::LaneWidth::k64), 64u);
  EXPECT_EQ(sim::lanes_of(sim::LaneWidth::k256), 256u);
  EXPECT_EQ(sim::lanes_of(sim::LaneWidth::k512), 512u);
  EXPECT_EQ(sim::lanes_of(sim::LaneWidth::kAuto), 0u);
  EXPECT_STREQ(sim::to_string(sim::LaneWidth::k512), "512");
  EXPECT_STREQ(sim::to_string(sim::LaneWidth::kAuto), "auto");
}

}  // namespace
}  // namespace ffr::fault
