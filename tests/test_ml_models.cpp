// Tests for the regression models: exactness on problems they must solve
// perfectly, sanity on noisy data, hyperparameter plumbing, clone semantics.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "ml/pipeline.hpp"
#include "ml/scaler.hpp"
#include "ml/svr.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace ffr::ml {
namespace {

// y = 2*x0 - 3*x1 + 0.5 with noise sigma.
struct LinearProblem {
  Matrix x;
  Vector y;
};

LinearProblem make_linear_problem(std::size_t n, double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  LinearProblem p;
  p.x = Matrix(n, 2);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x(i, 0) = rng.uniform(-2, 2);
    p.x(i, 1) = rng.uniform(-2, 2);
    p.y[i] = 2.0 * p.x(i, 0) - 3.0 * p.x(i, 1) + 0.5 + noise * rng.normal();
  }
  return p;
}

// A smooth non-linear target the linear model cannot fit.
struct NonlinearProblem {
  Matrix x;
  Vector y;
};

NonlinearProblem make_nonlinear_problem(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  NonlinearProblem p;
  p.x = Matrix(n, 2);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x(i, 0) = rng.uniform(-3, 3);
    p.x(i, 1) = rng.uniform(-3, 3);
    p.y[i] = std::sin(p.x(i, 0)) * std::cos(0.5 * p.x(i, 1)) +
             0.3 * p.x(i, 0) * p.x(i, 1) * 0.1;
  }
  return p;
}

TEST(Linear, ExactOnNoiselessLinearData) {
  const auto p = make_linear_problem(100, 0.0, 1);
  LinearLeastSquares model;
  model.fit(p.x, p.y);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-9);
  EXPECT_NEAR(model.coefficients()[1], -3.0, 1e-9);
  EXPECT_NEAR(model.intercept(), 0.5, 1e-9);
  const Vector pred = model.predict(p.x);
  EXPECT_GT(r2_score(p.y, pred), 1.0 - 1e-12);
}

TEST(Linear, RobustToNoise) {
  const auto p = make_linear_problem(500, 0.2, 2);
  LinearLeastSquares model;
  model.fit(p.x, p.y);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 0.1);
  EXPECT_NEAR(model.coefficients()[1], -3.0, 0.1);
}

TEST(Linear, PredictBeforeFitThrows) {
  LinearLeastSquares model;
  EXPECT_THROW((void)model.predict(Matrix(1, 2)), std::logic_error);
}

TEST(Linear, FeatureMismatchThrows) {
  const auto p = make_linear_problem(20, 0.0, 3);
  LinearLeastSquares model;
  model.fit(p.x, p.y);
  EXPECT_THROW((void)model.predict(Matrix(2, 5)), std::invalid_argument);
}

TEST(Knn, InterpolatesTrainingSetAtKOne) {
  const auto p = make_nonlinear_problem(50, 4);
  KnnRegressor model(1, 2.0, KnnWeights::kUniform);
  model.fit(p.x, p.y);
  const Vector pred = model.predict(p.x);
  for (std::size_t i = 0; i < p.y.size(); ++i) EXPECT_DOUBLE_EQ(pred[i], p.y[i]);
}

TEST(Knn, DistanceWeightedExactMatchDominates) {
  Matrix x{{0.0}, {1.0}, {2.0}};
  Vector y{10.0, 20.0, 30.0};
  KnnRegressor model(3, 2.0, KnnWeights::kDistance);
  model.fit(x, y);
  const Vector pred = model.predict(Matrix{{1.0}});
  EXPECT_DOUBLE_EQ(pred[0], 20.0);
}

TEST(Knn, UniformAverageOfNeighbours) {
  Matrix x{{0.0}, {1.0}, {10.0}};
  Vector y{1.0, 3.0, 100.0};
  KnnRegressor model(2, 2.0, KnnWeights::kUniform);
  model.fit(x, y);
  const Vector pred = model.predict(Matrix{{0.4}});
  EXPECT_DOUBLE_EQ(pred[0], 2.0);  // mean of the two nearest
}

TEST(Knn, ManhattanVsEuclideanChangesNeighbours) {
  // Query at origin; A = (3, 0): L1 3, L2 3. B = (2.2, 2.2): L1 4.4, L2 ~3.11.
  Matrix x{{3.0, 0.0}, {2.2, 2.2}};
  Vector y{1.0, 2.0};
  KnnRegressor manhattan(1, 1.0, KnnWeights::kUniform);
  manhattan.fit(x, y);
  KnnRegressor euclidean(1, 2.0, KnnWeights::kUniform);
  euclidean.fit(x, y);
  const Matrix q{{0.0, 0.0}};
  EXPECT_DOUBLE_EQ(manhattan.predict(q)[0], 1.0);
  EXPECT_DOUBLE_EQ(euclidean.predict(q)[0], 1.0);
  // Move A out so the metrics disagree: A = (3.5, 0) -> L1 3.5 vs B 4.4;
  // L2: A 3.5 vs B 3.11 -> B nearer in L2, A nearer in L1.
  Matrix x2{{3.5, 0.0}, {2.2, 2.2}};
  manhattan.fit(x2, y);
  euclidean.fit(x2, y);
  EXPECT_DOUBLE_EQ(manhattan.predict(q)[0], 1.0);
  EXPECT_DOUBLE_EQ(euclidean.predict(q)[0], 2.0);
}

TEST(Knn, BeatsLinearOnNonlinearProblem) {
  const auto p = make_nonlinear_problem(400, 5);
  const auto test = make_nonlinear_problem(100, 6);
  LinearLeastSquares linear;
  linear.fit(p.x, p.y);
  KnnRegressor knn(5, 2.0, KnnWeights::kDistance);
  knn.fit(p.x, p.y);
  const double linear_r2 = r2_score(test.y, linear.predict(test.x));
  const double knn_r2 = r2_score(test.y, knn.predict(test.x));
  EXPECT_GT(knn_r2, linear_r2 + 0.2);
  EXPECT_GT(knn_r2, 0.8);
}

TEST(Knn, ParamPlumbing) {
  KnnRegressor model;
  model.set_params({{"k", 3}, {"p", 1}, {"weights", 1}});
  const ParamMap params = model.get_params();
  EXPECT_EQ(params.at("k"), 3);
  EXPECT_EQ(params.at("p"), 1);
  EXPECT_EQ(params.at("weights"), 1);
  EXPECT_THROW(model.set_params({{"bogus", 1}}), std::invalid_argument);
  EXPECT_THROW(model.set_params({{"k", 0}}), std::invalid_argument);
}

TEST(Svr, FitsLinearDataWithLinearKernel) {
  const auto p = make_linear_problem(80, 0.0, 7);
  SvrConfig config;
  config.kernel = SvrKernel::kLinear;
  config.c = 100.0;
  config.epsilon = 0.01;
  config.gamma = 1.0;
  SvrRegressor model(config);
  model.fit(p.x, p.y);
  const Vector pred = model.predict(p.x);
  // Every point should be inside (or near) the epsilon tube.
  EXPECT_LT(max_absolute_error(p.y, pred), 0.05);
  EXPECT_GT(r2_score(p.y, pred), 0.999);
}

TEST(Svr, RbfFitsNonlinearProblem) {
  const auto p = make_nonlinear_problem(300, 8);
  const auto test = make_nonlinear_problem(80, 9);
  SvrConfig config;
  config.c = 10.0;
  config.gamma = 0.5;
  config.epsilon = 0.02;
  SvrRegressor model(config);
  model.fit(p.x, p.y);
  EXPECT_GT(r2_score(test.y, model.predict(test.x)), 0.9);
  EXPECT_GT(model.num_support_vectors(), 10u);
  EXPECT_LE(model.final_gap(), config.tol);
}

TEST(Svr, ConstantTargetYieldsConstantPrediction) {
  Matrix x{{0.0}, {1.0}, {2.0}, {3.0}};
  Vector y{5.0, 5.0, 5.0, 5.0};
  SvrRegressor model;
  model.fit(x, y);
  const Vector pred = model.predict(x);
  for (const double v : pred) EXPECT_NEAR(v, 5.0, 0.2);
  EXPECT_EQ(model.num_support_vectors(), 0u);
}

TEST(Svr, EpsilonTubeIgnoresSmallNoise) {
  // With a wide tube, noise below epsilon yields (almost) no support vectors
  // relative to a narrow tube.
  const auto p = make_linear_problem(100, 0.05, 10);
  SvrConfig wide;
  wide.kernel = SvrKernel::kLinear;
  wide.epsilon = 0.5;
  wide.c = 10;
  SvrRegressor wide_model(wide);
  wide_model.fit(p.x, p.y);
  SvrConfig narrow = wide;
  narrow.epsilon = 0.001;
  SvrRegressor narrow_model(narrow);
  narrow_model.fit(p.x, p.y);
  EXPECT_LT(wide_model.num_support_vectors(),
            narrow_model.num_support_vectors());
}

TEST(Svr, BetaRespectsBoxAndSumConstraints) {
  // Indirect check: training must converge (gap <= tol) on a problem with a
  // tight C, which forces clipping at the box.
  const auto p = make_nonlinear_problem(120, 11);
  SvrConfig config;
  config.c = 0.05;
  config.gamma = 0.5;
  config.epsilon = 0.01;
  SvrRegressor model(config);
  model.fit(p.x, p.y);
  EXPECT_LE(model.final_gap(), config.tol);
}

TEST(Svr, ParamPlumbing) {
  SvrRegressor model;
  model.set_params({{"C", 3.5}, {"gamma", 0.055}, {"epsilon", 0.025}});
  const ParamMap params = model.get_params();
  EXPECT_DOUBLE_EQ(params.at("C"), 3.5);
  EXPECT_DOUBLE_EQ(params.at("gamma"), 0.055);
  EXPECT_DOUBLE_EQ(params.at("epsilon"), 0.025);
  EXPECT_THROW(model.set_params({{"C", -1}}), std::invalid_argument);
  EXPECT_THROW(model.set_params({{"nope", 1}}), std::invalid_argument);
}

TEST(Tree, FitsPiecewiseConstantExactly) {
  Matrix x{{0.0}, {1.0}, {2.0}, {3.0}, {10.0}, {11.0}, {12.0}};
  Vector y{1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0};
  DecisionTreeRegressor model;
  model.fit(x, y);
  const Vector pred = model.predict(x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(pred[i], y[i]);
  EXPECT_LE(model.depth(), 2u);
}

TEST(Tree, MaxDepthOneIsStump) {
  const auto p = make_nonlinear_problem(100, 12);
  DecisionTreeRegressor model(TreeConfig{.max_depth = 1});
  model.fit(p.x, p.y);
  EXPECT_EQ(model.num_nodes(), 1u);  // a single leaf (no split at depth 1)
}

TEST(Tree, MinSamplesLeafRespected) {
  const auto p = make_nonlinear_problem(64, 13);
  DecisionTreeRegressor model(TreeConfig{.max_depth = 50, .min_samples_leaf = 8});
  model.fit(p.x, p.y);
  // With >= 8 samples per leaf, at most 64/8 = 8 leaves -> <= 15 nodes.
  EXPECT_LE(model.num_nodes(), 15u);
}

TEST(Forest, BeatsSingleTreeOnNoisyData) {
  util::Rng rng(14);
  auto p = make_nonlinear_problem(400, 14);
  for (auto& v : p.y) v += 0.15 * rng.normal();
  const auto test = make_nonlinear_problem(150, 15);
  DecisionTreeRegressor tree(TreeConfig{.max_depth = 12});
  tree.fit(p.x, p.y);
  RandomForestRegressor forest(ForestConfig{.n_estimators = 40});
  forest.fit(p.x, p.y);
  const double tree_r2 = r2_score(test.y, tree.predict(test.x));
  const double forest_r2 = r2_score(test.y, forest.predict(test.x));
  EXPECT_GT(forest_r2, tree_r2);
}

TEST(Boosting, ImprovesWithMoreEstimators) {
  const auto p = make_nonlinear_problem(300, 16);
  const auto test = make_nonlinear_problem(100, 17);
  GradientBoostingRegressor small(BoostingConfig{.n_estimators = 5});
  small.fit(p.x, p.y);
  GradientBoostingRegressor big(BoostingConfig{.n_estimators = 200});
  big.fit(p.x, p.y);
  EXPECT_GT(r2_score(test.y, big.predict(test.x)),
            r2_score(test.y, small.predict(test.x)));
  EXPECT_GT(r2_score(test.y, big.predict(test.x)), 0.85);
}

TEST(Scaler, StandardizesColumns) {
  const auto p = make_linear_problem(200, 0.0, 18);
  StandardScaler scaler;
  const Matrix scaled = scaler.fit_transform(p.x);
  for (std::size_t c = 0; c < scaled.cols(); ++c) {
    const Vector col = scaled.col_copy(c);
    EXPECT_NEAR(linalg::mean(col), 0.0, 1e-10);
    EXPECT_NEAR(linalg::stddev(col), 1.0, 1e-10);
  }
}

TEST(Scaler, ConstantColumnCentredNotScaled) {
  Matrix x{{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}};
  StandardScaler scaler;
  const Matrix scaled = scaler.fit_transform(x);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(scaled(r, 0), 0.0);
}

TEST(Scaler, MinMaxMapsToUnitInterval) {
  Matrix x{{0.0}, {5.0}, {10.0}};
  MinMaxScaler scaler;
  const Matrix scaled = scaler.fit_transform(x);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(scaled(2, 0), 1.0);
}

TEST(Pipeline, ScalesBeforeInnerModel) {
  // Feature 1 has a huge scale; unscaled k-NN would ignore feature 0.
  util::Rng rng(19);
  Matrix x(200, 2);
  Vector y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-10000, 10000);
    y[i] = x(i, 0) > 0 ? 1.0 : 0.0;  // depends only on the small feature
  }
  KnnRegressor raw(5, 2.0, KnnWeights::kUniform);
  raw.fit(x, y);
  auto piped = make_scaled<KnnRegressor>(5, 2.0, KnnWeights::kUniform);
  piped->fit(x, y);
  const double raw_r2 = r2_score(y, raw.predict(x));
  const double piped_r2 = r2_score(y, piped->predict(x));
  EXPECT_GT(piped_r2, 0.95);
  EXPECT_GT(piped_r2, raw_r2 + 0.2);
}

TEST(Pipeline, CloneIsIndependent) {
  const auto p = make_linear_problem(50, 0.0, 20);
  auto a = make_scaled<KnnRegressor>(3, 1.0, KnnWeights::kDistance);
  a->fit(p.x, p.y);
  auto b = a->clone();
  EXPECT_TRUE(b->is_fitted());
  const Vector pa = a->predict(p.x);
  const Vector pb = b->predict(p.x);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(Zoo, AllModelsConstructFitPredict) {
  const auto p = make_linear_problem(60, 0.1, 21);
  for (const auto name : model_zoo_names()) {
    auto model = make_model(name);
    ASSERT_NE(model, nullptr) << name;
    model->fit(p.x, p.y);
    const Vector pred = model->predict(p.x);
    EXPECT_EQ(pred.size(), p.y.size()) << name;
    EXPECT_GT(r2_score(p.y, pred), 0.5) << name;
  }
  EXPECT_THROW((void)make_model("nope"), std::invalid_argument);
}

TEST(Metrics, HandComputedValues) {
  const Vector y_true{1.0, 2.0, 3.0, 4.0};
  const Vector y_pred{1.5, 2.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(y_true, y_pred), (0.5 + 0 + 1 + 1) / 4.0);
  EXPECT_DOUBLE_EQ(max_absolute_error(y_true, y_pred), 1.0);
  EXPECT_NEAR(root_mean_squared_error(y_true, y_pred),
              std::sqrt((0.25 + 0 + 1 + 1) / 4.0), 1e-12);
  EXPECT_DOUBLE_EQ(r2_score(y_true, y_true), 1.0);
}

TEST(Metrics, EvEqualsR2WhenResidualMeanIsZero) {
  const Vector y_true{1.0, 2.0, 3.0, 4.0};
  const Vector y_pred{1.2, 1.8, 3.2, 3.8};  // residuals sum to 0
  EXPECT_NEAR(explained_variance(y_true, y_pred), r2_score(y_true, y_pred), 1e-12);
}

TEST(Metrics, EvIgnoresConstantBias) {
  const Vector y_true{1.0, 2.0, 3.0};
  const Vector biased{2.0, 3.0, 4.0};  // +1 everywhere
  EXPECT_DOUBLE_EQ(explained_variance(y_true, biased), 1.0);
  EXPECT_LT(r2_score(y_true, biased), 1.0);
}

TEST(Metrics, MismatchedSizesThrow) {
  const Vector a{1.0};
  const Vector b{1.0, 2.0};
  EXPECT_THROW((void)mean_absolute_error(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace ffr::ml
