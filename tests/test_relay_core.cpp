// Smoke tests for the paper-scale relay_core evaluation circuit: flip-flop
// census at/above the paper's 947-FF operating point, clean golden delivery
// through the full FIFO chain, CRC error detection, a small-subset SFI
// campaign (flat vs batched differential) to prove the design is
// campaign-ready, and checkpoint-restore / incremental-replay bit-exactness
// at paper scale. Registered with a CTest TIMEOUT and the "scale" label.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "circuits/relay_core.hpp"
#include "fault/campaign.hpp"
#include "fault/engine.hpp"
#include "fault/shard.hpp"
#include "netlist/verilog_reader.hpp"
#include "netlist/verilog_writer.hpp"
#include "rtl/crc.hpp"
#include "service/content_hash.hpp"
#include "sim/runner.hpp"
#include "sim/testbench.hpp"

namespace ffr::circuits {
namespace {

struct RelayFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    core = new RelayCore(build_relay_core());
    bench = new RelayTestbench(build_relay_testbench(*core));
  }
  static void TearDownTestSuite() {
    delete bench;
    bench = nullptr;
    delete core;
    core = nullptr;
  }
  static RelayCore* core;
  static RelayTestbench* bench;
};

RelayCore* RelayFixture::core = nullptr;
RelayTestbench* RelayFixture::bench = nullptr;

TEST_F(RelayFixture, ReachesPaperScale) {
  // The paper's cost argument is stated for a 947-flip-flop circuit; the
  // default relay configuration must meet or exceed that operating point.
  EXPECT_GE(core->netlist.num_flip_flops(), 947u);
}

TEST_F(RelayFixture, GoldenRunDeliversEveryFrameIntact) {
  const sim::GoldenResult golden = sim::run_golden(core->netlist, bench->tb);
  ASSERT_EQ(golden.frames.size(), bench->sent_frames.size());
  for (std::size_t f = 0; f < golden.frames.size(); ++f) {
    EXPECT_EQ(golden.frames[f].bytes, bench->sent_frames[f]) << "frame " << f;
    EXPECT_FALSE(golden.frames[f].err) << "frame " << f;
  }
}

TEST_F(RelayFixture, CorruptedPayloadRaisesCrcError) {
  // Flip one bit of a payload byte mid-flight: the frame must still arrive
  // (same entry count) but with the CRC error flag raised on its eop entry.
  const sim::GoldenResult golden = sim::run_golden(core->netlist, bench->tb);
  // Target a data bit of the first hop's storage while the first frame's
  // bytes are in flight; storage slot 1 bit 0 holds a payload byte then.
  const auto slot_cell = core->netlist.find_cell("hop0_mem1[0]");
  ASSERT_TRUE(slot_cell.has_value());
  sim::InjectionEvent ev;
  ev.ff_cell = *slot_cell;
  ev.cycle = 4;  // first frame occupies the ingress FIFO around this cycle
  ev.lane_mask = 1;
  const sim::InjectionEvent events[] = {ev};
  const sim::RunResult faulty =
      sim::run_testbench(core->netlist, bench->tb, events);
  const sim::FrameList& frames = faulty.lane_frames[0];
  ASSERT_FALSE(frames.empty());
  bool any_difference = false;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const bool matches_golden = f < golden.frames.size() &&
                                frames[f].bytes == golden.frames[f].bytes &&
                                frames[f].err == golden.frames[f].err;
    if (!matches_golden) any_difference = true;
    if (frames[f].bytes != (f < golden.frames.size() ? golden.frames[f].bytes
                                                     : frames[f].bytes)) {
      EXPECT_TRUE(frames[f].err)
          << "corrupted frame " << f << " must fail the CRC check";
    }
  }
  EXPECT_TRUE(any_difference) << "injection into live storage had no effect";
}

TEST_F(RelayFixture, SmallSubsetCampaignCompletes) {
  fault::CampaignEngine engine(core->netlist, bench->tb);
  fault::CampaignConfig config;
  config.injections_per_ff = 16;
  // Pin the scalar width: the pass-count assertion below is 64-lane packing
  // arithmetic (kAuto would pick a wider block on SIMD hosts).
  config.lane_width = sim::LaneWidth::k64;
  // A spread of flip-flops across the chain: ingress storage, mid-chain
  // pointers, egress CRC.
  const std::size_t n = core->netlist.num_flip_flops();
  config.ff_subset = {0, 1, n / 3, n / 2, 2 * n / 3, n - 2, n - 1};
  const fault::CampaignResult batched = engine.run(config);
  ASSERT_EQ(batched.per_ff.size(), config.ff_subset.size());
  for (const fault::FfResult& ff : batched.per_ff) {
    EXPECT_EQ(ff.classes.total(), config.injections_per_ff);
    EXPECT_GE(ff.fdr(), 0.0);
    EXPECT_LE(ff.fdr(), 1.0);
  }
  // Differential against the flat reference campaign at paper scale.
  const fault::CampaignResult flat =
      fault::run_campaign(core->netlist, bench->tb, engine.golden(), config);
  ASSERT_EQ(flat.per_ff.size(), batched.per_ff.size());
  for (std::size_t i = 0; i < flat.per_ff.size(); ++i) {
    EXPECT_EQ(flat.per_ff[i].classes.counts, batched.per_ff[i].classes.counts);
  }
  // Cross-FF packing: 7 FFs x 16 injections fit in ceil(112/64) = 2 passes,
  // where the flat campaign needs one pass per flip-flop.
  EXPECT_EQ(batched.total_sim_passes, 2u);
  EXPECT_EQ(flat.total_sim_passes, 7u);
}

TEST_F(RelayFixture, CheckpointRestoreReproducesFullRunAtPaperScale) {
  // Restoring any golden checkpoint and fast-forwarding must reproduce the
  // full-run frames (all 64 lanes, including delivery cycles) and the final
  // flip-flop state bit-exactly — with and without dirty-set evaluation.
  const sim::CompiledStimulus stimulus(core->netlist, bench->tb);
  sim::GoldenCheckpoints ckpts;
  ckpts.interval = 29;
  sim::ReplayRunner recorder(stimulus);
  sim::RunOptions record_options;
  record_options.record = &ckpts;
  (void)recorder.run({}, record_options);
  ASSERT_EQ(ckpts.snapshots.size(), (stimulus.num_cycles() + 28) / 29);

  const auto ffs = core->netlist.flip_flops();
  sim::ReplayRunner full_runner(stimulus);
  sim::ReplayRunner resumed_runner(stimulus);
  // Early / mid / late injections across the chain (ingress storage,
  // mid-chain pointer, egress CRC region).
  const std::size_t window = bench->tb.inject_end - bench->tb.inject_begin;
  const std::size_t probe_cycles[] = {bench->tb.inject_begin + 1,
                                      bench->tb.inject_begin + window / 2,
                                      bench->tb.inject_end - 1};
  const std::size_t probe_ffs[] = {1, ffs.size() / 2, ffs.size() - 1};
  for (std::size_t p = 0; p < 3; ++p) {
    sim::InjectionEvent ev;
    ev.ff_cell = ffs[probe_ffs[p]];
    ev.cycle = static_cast<std::uint32_t>(probe_cycles[p]);
    ev.lane_mask = sim::Lanes{1} << (p * 11);
    const sim::InjectionEvent events[] = {ev};
    const sim::RunResult full = full_runner.run(events);
    for (const bool incremental : {false, true}) {
      SCOPED_TRACE("probe " + std::to_string(p) + " incremental " +
                   std::to_string(incremental));
      sim::RunOptions options;
      options.resume = &ckpts;
      options.incremental_eval = incremental;
      const sim::RunResult resumed = resumed_runner.run(events, options);
      EXPECT_EQ(resumed.start_cycle, (probe_cycles[p] / 29) * 29);
      ASSERT_EQ(full.lane_frames.size(), resumed.lane_frames.size());
      for (std::size_t lane = 0; lane < full.lane_frames.size(); ++lane) {
        const sim::FrameList& a = full.lane_frames[lane];
        const sim::FrameList& b = resumed.lane_frames[lane];
        ASSERT_EQ(a.size(), b.size()) << "lane " << lane;
        for (std::size_t f = 0; f < a.size(); ++f) {
          ASSERT_EQ(a[f].bytes, b[f].bytes) << "lane " << lane << " frame " << f;
          ASSERT_EQ(a[f].err, b[f].err) << "lane " << lane << " frame " << f;
          ASSERT_EQ(a[f].end_cycle, b[f].end_cycle)
              << "lane " << lane << " frame " << f;
        }
      }
      for (const netlist::CellId ff : ffs) {
        ASSERT_EQ(full_runner.simulator().ff_state(ff),
                  resumed_runner.simulator().ff_state(ff))
            << "ff " << core->netlist.cell(ff).name;
      }
    }
  }
}

TEST_F(RelayFixture, IncrementalCampaignBitExactAndCheaper) {
  fault::CampaignEngine engine(core->netlist, bench->tb);
  fault::CampaignConfig config;
  config.injections_per_ff = 48;
  const std::size_t n = core->netlist.num_flip_flops();
  for (std::size_t i = 0; i < n; i += 41) config.ff_subset.push_back(i);

  const fault::CampaignResult flat =
      fault::run_campaign(core->netlist, bench->tb, engine.golden(), config);
  config.replay_mode = fault::ReplayMode::kFull;
  const fault::CampaignResult full = engine.run(config);
  config.replay_mode = fault::ReplayMode::kIncremental;
  const fault::CampaignResult incremental = engine.run(config);

  for (const auto* batched : {&full, &incremental}) {
    ASSERT_EQ(flat.per_ff.size(), batched->per_ff.size());
    for (std::size_t i = 0; i < flat.per_ff.size(); ++i) {
      EXPECT_EQ(flat.per_ff[i].classes.counts, batched->per_ff[i].classes.counts)
          << "ff " << flat.per_ff[i].name;
    }
    EXPECT_EQ(flat.fdr_vector(), batched->fdr_vector());
  }
  // The paper-scale cost argument: checkpointed starts cut simulated cycles,
  // dirty-set evaluation cuts gate evaluations on top.
  EXPECT_GT(incremental.checkpoint_restores, 0u);
  EXPECT_LT(incremental.cycles_simulated, full.cycles_simulated);
  EXPECT_LT(incremental.ops_evaluated, full.ops_evaluated);
  // Bit-packed golden checkpoints at paper scale: at least 32x below the
  // broadcast-word layout (one 64-bit word per FF per snapshot plus frame
  // copies). kFull replays from reset and holds no checkpoints at all.
  ASSERT_GT(incremental.checkpoint_bytes, 0u);
  EXPECT_GE(incremental.checkpoint_bytes_unpacked,
            32 * incremental.checkpoint_bytes);
  EXPECT_EQ(full.checkpoint_bytes, 0u);
}

TEST_F(RelayFixture, LaneWidthDifferentialAtPaperScale) {
  // The SIMD lane-block paths must match the flat 64-lane reference on the
  // paper-scale circuit too, in both checkpointed replay modes. Reduced
  // subset/injection counts keep the scale budget; test_lane_width.cpp
  // carries the exhaustive width x mode x thread sweep on small circuits.
  sim::force_native_lane_width_for_testing(sim::LaneWidth::k512);
  fault::CampaignEngine engine(core->netlist, bench->tb);
  fault::CampaignConfig config;
  config.injections_per_ff = 30;
  const std::size_t n = core->netlist.num_flip_flops();
  for (std::size_t i = 0; i < n; i += 97) config.ff_subset.push_back(i);

  const fault::CampaignResult flat =
      fault::run_campaign(core->netlist, bench->tb, engine.golden(), config);
  for (const sim::LaneWidth width : {sim::LaneWidth::k256, sim::LaneWidth::k512}) {
    for (const fault::ReplayMode mode :
         {fault::ReplayMode::kCheckpoint, fault::ReplayMode::kIncremental}) {
      SCOPED_TRACE(std::string("width ") + sim::to_string(width) + " mode " +
                   to_string(mode));
      fault::CampaignConfig wide = config;
      wide.lane_width = width;
      wide.replay_mode = mode;
      const fault::CampaignResult result = engine.run(wide);
      EXPECT_EQ(result.lanes_per_pass,
                sim::lanes_of(width) * result.blocks_per_pass);
      ASSERT_EQ(flat.per_ff.size(), result.per_ff.size());
      for (std::size_t i = 0; i < flat.per_ff.size(); ++i) {
        EXPECT_EQ(flat.per_ff[i].classes.counts, result.per_ff[i].classes.counts)
            << "ff " << flat.per_ff[i].name;
      }
      EXPECT_EQ(flat.fdr_vector(), result.fdr_vector());
    }
  }
  sim::force_native_lane_width_for_testing(sim::LaneWidth::kAuto);
}

TEST_F(RelayFixture, ShardedCampaignMergesBitIdenticalAtPaperScale) {
  // Paper-scale shard-equivalence: a 3-way sharded campaign on the >= 947-FF
  // relay design, merged in every shard permutation, must be bit-identical
  // to the unsharded engine run — FDR and every deterministic counter.
  fault::CampaignEngine engine(core->netlist, bench->tb);
  const std::string hash =
      service::content_hash(core->netlist, bench->tb).hex();
  fault::CampaignConfig config;
  config.injections_per_ff = 24;
  const std::size_t n = core->netlist.num_flip_flops();
  for (std::size_t i = 0; i < n; i += 53) config.ff_subset.push_back(i);

  const fault::CampaignResult unsharded = engine.run(config);

  constexpr std::size_t kShards = 3;
  std::vector<fault::CampaignPartial> partials;
  for (std::size_t k = 0; k < kShards; ++k) {
    fault::CampaignConfig shard = config;
    shard.shard = fault::ShardSpec{k, kShards};
    partials.push_back(fault::run_shard(engine, shard, hash));
  }

  std::vector<std::size_t> order = {0, 1, 2};
  do {
    std::vector<fault::CampaignPartial> shuffled;
    for (const std::size_t k : order) shuffled.push_back(partials[k]);
    const fault::CampaignResult merged = fault::merge_partials(shuffled);
    ASSERT_EQ(merged.per_ff.size(), unsharded.per_ff.size());
    for (std::size_t i = 0; i < merged.per_ff.size(); ++i) {
      EXPECT_EQ(merged.per_ff[i].classes.counts,
                unsharded.per_ff[i].classes.counts)
          << "ff " << unsharded.per_ff[i].name;
      EXPECT_EQ(merged.per_ff[i].injections, unsharded.per_ff[i].injections);
    }
    EXPECT_EQ(merged.fdr_vector(), unsharded.fdr_vector());
    EXPECT_EQ(merged.total_injections, unsharded.total_injections);
    EXPECT_EQ(merged.total_sim_passes, unsharded.total_sim_passes);
    EXPECT_EQ(merged.cycles_simulated, unsharded.cycles_simulated);
    EXPECT_EQ(merged.ops_evaluated, unsharded.ops_evaluated);
    EXPECT_EQ(merged.checkpoint_restores, unsharded.checkpoint_restores);
    ASSERT_EQ(merged.pass_histogram.size(), unsharded.pass_histogram.size());
    for (std::size_t i = 0; i < merged.pass_histogram.size(); ++i) {
      EXPECT_EQ(merged.pass_histogram[i].width,
                unsharded.pass_histogram[i].width);
      EXPECT_EQ(merged.pass_histogram[i].blocks,
                unsharded.pass_histogram[i].blocks);
      EXPECT_EQ(merged.pass_histogram[i].passes,
                unsharded.pass_histogram[i].passes);
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST_F(RelayFixture, ImportedNetlistCampaignBitExact) {
  // The Verilog frontend's paper-scale differential: dump the >= 947-FF
  // relay design, read it back, and require campaigns on the imported
  // netlist to be bit-identical to the flat reference on the in-memory
  // original — at the scalar k64 width and at kAuto (widest SIMD block).
  const std::string text = netlist::to_verilog(core->netlist);
  const netlist::Netlist imported = netlist::read_verilog(text, "relay_core.v");
  std::string why;
  ASSERT_TRUE(netlist::structurally_equal(core->netlist, imported, &why)) << why;
  ASSERT_EQ(netlist::to_verilog(imported), text);

  const sim::Testbench tb =
      sim::retarget_testbench(bench->tb, core->netlist, imported);
  const sim::GoldenResult golden_orig = sim::run_golden(core->netlist, bench->tb);
  const sim::GoldenResult golden_imp = sim::run_golden(imported, tb);
  ASSERT_EQ(golden_orig.frames.size(), golden_imp.frames.size());
  for (std::size_t f = 0; f < golden_orig.frames.size(); ++f) {
    ASSERT_EQ(golden_orig.frames[f].bytes, golden_imp.frames[f].bytes) << f;
    ASSERT_EQ(golden_orig.frames[f].err, golden_imp.frames[f].err) << f;
  }

  fault::CampaignConfig config;
  config.injections_per_ff = 24;
  const std::size_t n = core->netlist.num_flip_flops();
  for (std::size_t i = 0; i < n; i += 67) config.ff_subset.push_back(i);

  const fault::CampaignResult flat =
      fault::run_campaign(core->netlist, bench->tb, golden_orig, config);
  fault::CampaignEngine engine(imported, tb);
  for (const sim::LaneWidth width : {sim::LaneWidth::k64, sim::LaneWidth::kAuto}) {
    SCOPED_TRACE(std::string("width ") + sim::to_string(width));
    fault::CampaignConfig wide = config;
    wide.lane_width = width;
    const fault::CampaignResult batched = engine.run(wide);
    ASSERT_EQ(flat.per_ff.size(), batched.per_ff.size());
    for (std::size_t i = 0; i < flat.per_ff.size(); ++i) {
      EXPECT_EQ(flat.per_ff[i].name, batched.per_ff[i].name);
      EXPECT_EQ(flat.per_ff[i].classes.counts, batched.per_ff[i].classes.counts)
          << "ff " << flat.per_ff[i].name;
    }
    EXPECT_EQ(flat.fdr_vector(), batched.fdr_vector());
  }
}

}  // namespace
}  // namespace ffr::circuits
