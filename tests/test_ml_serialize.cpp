// Model persistence: save -> load -> predict bit-identity across every zoo
// model on random feature matrices, plus strict rejection of corrupt,
// truncated and wrong-version model files.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/model_zoo.hpp"
#include "ml/pipeline.hpp"
#include "ml/serialize.hpp"
#include "ml/svr.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace ffr::ml {
namespace {

struct Problem {
  Matrix x;
  Vector y;
};

// Random features on wildly different scales (like the real feature set)
// and targets in [0, 1] (like FDR values).
Problem make_problem(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Problem p;
  p.x = Matrix(rows, cols);
  p.y.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double scale = c % 3 == 0 ? 1000.0 : (c % 3 == 1 ? 1.0 : 0.01);
      p.x(r, c) = scale * rng.uniform(-2, 2);
    }
    p.y[r] = 0.5 + 0.5 * std::sin(p.x(r, 0) * 0.001 + p.x(r, cols - 1));
  }
  return p;
}

std::string save_to_string(const Regressor& model) {
  std::ostringstream os;
  model.save(os);
  return os.str();
}

std::unique_ptr<Regressor> round_trip(const Regressor& model) {
  std::istringstream is(save_to_string(model));
  return load_model(is);
}

TEST(Serialize, RoundTripIsBitIdenticalForEveryZooModel) {
  const Problem train = make_problem(48, 6, 0xA1);
  const Problem query = make_problem(17, 6, 0xB2);
  for (const std::string_view name : model_zoo_names()) {
    auto model = make_model(name);
    model->fit(train.x, train.y);
    const auto reloaded = round_trip(*model);
    EXPECT_EQ(reloaded->name(), model->name()) << name;
    EXPECT_TRUE(reloaded->is_fitted()) << name;
    const Vector expected = model->predict(query.x);
    const Vector actual = reloaded->predict(query.x);
    ASSERT_EQ(actual.size(), expected.size()) << name;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      // Exact comparison on purpose: the format must round-trip binary64.
      EXPECT_EQ(actual[i], expected[i]) << name << " row " << i;
    }
  }
}

TEST(Serialize, RoundTripPreservesHyperparameters) {
  const Problem train = make_problem(30, 4, 0xC3);
  auto model = make_model("knn_paper");
  model->fit(train.x, train.y);
  const auto reloaded = round_trip(*model);
  EXPECT_EQ(reloaded->get_params(), model->get_params());
}

TEST(Serialize, FileRoundTripMatchesStreamRoundTrip) {
  const Problem train = make_problem(30, 5, 0xD4);
  const Problem query = make_problem(9, 5, 0xE5);
  auto model = make_model("random_forest");
  model->fit(train.x, train.y);
  const auto path =
      std::filesystem::temp_directory_path() / "ffr_test_model_roundtrip.txt";
  save_model_file(path, *model);
  const auto reloaded = load_model_file(path);
  std::filesystem::remove(path);
  const Vector expected = model->predict(query.x);
  const Vector actual = reloaded->predict(query.x);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]);
  }
}

TEST(Serialize, SavingAnUnfittedModelThrows) {
  for (const std::string_view name : model_zoo_names()) {
    const auto model = make_model(name);
    std::ostringstream os;
    EXPECT_THROW(model->save(os), std::logic_error) << name;
  }
}

TEST(Serialize, RejectsBadMagic) {
  std::istringstream is("not-a-model 1 knn");
  EXPECT_THROW(
      {
        try {
          (void)load_model(is);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(Serialize, RejectsWrongVersion) {
  std::istringstream is("ffr-model 999 knn");
  EXPECT_THROW(
      {
        try {
          (void)load_model(is);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("version 999"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(Serialize, RejectsUnknownTag) {
  std::istringstream is("ffr-model 1 neural_net");
  EXPECT_THROW(
      {
        try {
          (void)load_model(is);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("neural_net"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(Serialize, RejectsTruncatedFilesAtEveryPrefixLength) {
  const Problem train = make_problem(20, 3, 0xF6);
  for (const std::string_view name :
       {std::string_view("linear"), std::string_view("knn_paper"),
        std::string_view("decision_tree"), std::string_view("gradient_boosting")}) {
    auto model = make_model(name);
    model->fit(train.x, train.y);
    const std::string full = save_to_string(*model);
    // Cut at several points, including just before the final "end".
    for (const double fraction : {0.1, 0.5, 0.9}) {
      const auto cut = static_cast<std::size_t>(
          fraction * static_cast<double>(full.size()));
      std::istringstream is(full.substr(0, cut));
      EXPECT_THROW((void)load_model(is), std::runtime_error)
          << name << " cut at " << cut << "/" << full.size();
    }
    std::istringstream is(full.substr(0, full.size() - 4));
    EXPECT_THROW((void)load_model(is), std::runtime_error) << name;
  }
}

TEST(Serialize, RejectsCorruptNumbersAndCounts) {
  const Problem train = make_problem(20, 3, 0x17);
  auto model = make_model("linear");
  model->fit(train.x, train.y);
  std::string text = save_to_string(*model);

  // A non-numeric token where a double is expected.
  std::string corrupt = text;
  corrupt.replace(corrupt.find("intercept") + 10, 3, "abc");
  std::istringstream bad_number(corrupt);
  EXPECT_THROW((void)load_model(bad_number), std::runtime_error);

  // An absurd element count (exceeds the sanity limit).
  corrupt = text;
  const auto coef_pos = corrupt.find("coef ");
  corrupt.replace(coef_pos, 7, "coef 99999999999999");
  std::istringstream bad_count(corrupt);
  EXPECT_THROW((void)load_model(bad_count), std::runtime_error);

  // A wrong field name.
  corrupt = text;
  corrupt.replace(corrupt.find("coef"), 4, "cofe");
  std::istringstream bad_key(corrupt);
  EXPECT_THROW((void)load_model(bad_key), std::runtime_error);
}

TEST(Serialize, RejectsOutOfRangeTreeChildren) {
  const Problem train = make_problem(40, 3, 0x28);
  DecisionTreeRegressor tree;
  tree.fit(train.x, train.y);
  std::string text = save_to_string(tree);
  // Corrupt the first split node's left-child index to a cycle (0 -> itself).
  const auto nodes_pos = text.find("nodes ");
  ASSERT_NE(nodes_pos, std::string::npos);
  // The first node line follows the "nodes <count>\n" line; a split node's
  // fields are "<feature> <threshold> <left> <right> <value>".
  std::istringstream probe(text.substr(nodes_pos));
  std::string tok;
  probe >> tok;  // "nodes"
  std::size_t count = 0;
  probe >> count;
  ASSERT_GT(count, 1u);  // the problem is non-trivial, the root must split
  std::uint32_t feature = 0;
  double threshold = 0.0;
  std::uint32_t left = 0;
  probe >> feature >> threshold >> left;
  ASSERT_NE(feature, ~std::uint32_t{0});
  const std::string needle = " " + std::to_string(left) + " ";
  const auto left_pos = text.find(needle, nodes_pos);
  ASSERT_NE(left_pos, std::string::npos);
  text.replace(left_pos, needle.size(), " 0 ");
  std::istringstream is(text);
  EXPECT_THROW((void)load_model(is), std::runtime_error);
}

TEST(Serialize, LoadedModelKeepsServingAfterFurtherStreamData) {
  // Two models back to back in one stream (the ensemble/nested case).
  const Problem train = make_problem(25, 4, 0x39);
  auto first = make_model("linear");
  auto second = make_model("ridge");
  first->fit(train.x, train.y);
  second->fit(train.x, train.y);
  std::ostringstream os;
  first->save(os);
  second->save(os);
  std::istringstream is(os.str());
  const auto a = load_model(is);
  const auto b = load_model(is);
  EXPECT_EQ(a->name(), "linear_least_squares");
  EXPECT_EQ(b->name(), "scaled_ridge");
}

}  // namespace
}  // namespace ffr::ml
