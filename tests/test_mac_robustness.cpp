// Robustness tests for the MAC receive engine driven directly at the XGMII
// input (no loopback): corrupted FCS, truncated frames, garbage control
// characters, back-to-back traffic — the situations fault injection creates
// and the failure classifier depends on.

#include <gtest/gtest.h>

#include "circuits/mac_core.hpp"
#include "rtl/crc.hpp"
#include "sim/runner.hpp"

namespace ffr::circuits {
namespace {

using netlist::NetId;

struct RxHarness {
  MacCore mac;
  // The XGMII byte stream to drive, one (ctrl, byte) per cycle.
  std::vector<std::pair<bool, std::uint8_t>> stream;

  void idle(std::size_t cycles) {
    for (std::size_t i = 0; i < cycles; ++i) stream.push_back({true, kXgmiiIdle});
  }
  void frame(std::span<const std::uint8_t> payload, bool corrupt_fcs = false,
             bool truncate = false) {
    stream.push_back({true, kXgmiiStart});
    for (int i = 0; i < 6; ++i) stream.push_back({false, kPreambleByte});
    stream.push_back({false, kSfdByte});
    std::uint32_t crc = rtl::kCrc32Init;
    for (const std::uint8_t byte : payload) {
      stream.push_back({false, byte});
      crc = rtl::crc32_update(crc, byte);
    }
    if (truncate) {
      // Drop FCS + terminate: go straight back to idle (abort condition).
      stream.push_back({true, kXgmiiIdle});
      return;
    }
    std::uint32_t fcs = crc ^ rtl::kCrc32FinalXor;
    if (corrupt_fcs) fcs ^= 0x40;
    for (int i = 0; i < 4; ++i) {
      stream.push_back({false, static_cast<std::uint8_t>(fcs >> (8 * i))});
    }
    stream.push_back({true, kXgmiiTerminate});
  }

  sim::FrameList run() {
    const auto& nl = mac.netlist;
    const std::size_t cycles = stream.size() + 40;
    sim::Stimulus stim(nl.primary_inputs().size(), cycles);
    const auto pi = [&](NetId net) {
      return static_cast<std::size_t>(nl.net(net).pi_index);
    };
    for (std::size_t c = 0; c < cycles; ++c) {
      const auto [ctrl, byte] =
          c < stream.size() ? stream[c]
                            : std::pair<bool, std::uint8_t>{true, kXgmiiIdle};
      stim.set(pi(mac.in.xg_rx_ctrl), c, ctrl);
      for (std::size_t b = 0; b < 8; ++b) {
        stim.set(pi(mac.in.xg_rx_data[b]), c, ((byte >> b) & 1u) != 0);
      }
      stim.set(pi(mac.in.rx_rd), c, true);
    }
    sim::Testbench tb;
    tb.stimulus = std::move(stim);
    tb.monitor = mac.packet_monitor();
    tb.inject_begin = 0;
    tb.inject_end = cycles;
    return sim::run_golden(nl, tb).frames;
  }
};

RxHarness make_harness() {
  MacConfig config;
  config.tx_depth_log2 = 3;
  config.rx_depth_log2 = 4;
  RxHarness harness;
  harness.mac = build_mac_core(config);
  harness.idle(4);
  return harness;
}

TEST(MacRx, GoodFrameDeliveredIntact) {
  RxHarness h = make_harness();
  const std::uint8_t payload[] = {1, 2, 3, 4, 5, 6, 7, 8};
  h.frame(payload);
  h.idle(4);
  const sim::FrameList frames = h.run();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(frames[0].err);
  EXPECT_EQ(frames[0].bytes,
            std::vector<std::uint8_t>(payload, payload + std::size(payload)));
}

TEST(MacRx, CorruptFcsFlagsError) {
  RxHarness h = make_harness();
  const std::uint8_t payload[] = {9, 8, 7, 6, 5, 4};
  h.frame(payload, /*corrupt_fcs=*/true);
  h.idle(4);
  const sim::FrameList frames = h.run();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].err);
  // Payload bytes still delivered (error marked on the end entry).
  EXPECT_EQ(frames[0].bytes.size(), std::size(payload));
}

TEST(MacRx, TruncatedFrameFlagsError) {
  RxHarness h = make_harness();
  const std::uint8_t payload[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  h.frame(payload, false, /*truncate=*/true);
  h.idle(6);
  const sim::FrameList frames = h.run();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].err);
}

TEST(MacRx, GarbageBetweenFramesIgnored) {
  RxHarness h = make_harness();
  // Control characters that are not START must leave the engine in idle.
  h.stream.push_back({true, 0x33});
  h.stream.push_back({false, 0xAA});  // data without preamble: ignored
  h.idle(2);
  const std::uint8_t payload[] = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
  h.frame(payload);
  h.idle(4);
  const sim::FrameList frames = h.run();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(frames[0].err);
  EXPECT_EQ(frames[0].bytes.size(), std::size(payload));
}

TEST(MacRx, AbortedPreambleRecovers) {
  RxHarness h = make_harness();
  // START then immediately terminate: no frame should be emitted.
  h.stream.push_back({true, kXgmiiStart});
  h.stream.push_back({false, kPreambleByte});
  h.stream.push_back({true, kXgmiiTerminate});
  h.idle(3);
  const std::uint8_t payload[] = {10, 20, 30, 40, 50};
  h.frame(payload);
  h.idle(4);
  const sim::FrameList frames = h.run();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(frames[0].err);
}

TEST(MacRx, BackToBackFramesAllDelivered) {
  RxHarness h = make_harness();
  for (int f = 0; f < 3; ++f) {
    std::vector<std::uint8_t> payload;
    for (int i = 0; i < 6 + f; ++i) {
      payload.push_back(static_cast<std::uint8_t>(f * 16 + i));
    }
    h.frame(payload);
    h.idle(2);  // minimal gap
  }
  h.idle(6);
  const sim::FrameList frames = h.run();
  ASSERT_EQ(frames.size(), 3u);
  for (int f = 0; f < 3; ++f) {
    EXPECT_FALSE(frames[f].err) << f;
    EXPECT_EQ(frames[f].bytes.size(), static_cast<std::size_t>(6 + f)) << f;
  }
}

TEST(MacRx, ShortFrameBelowDelayLineYieldsNoPayload) {
  // A frame whose payload is shorter than the 4-byte FCS delay line cannot
  // deliver payload bytes; it must still close with an end marker.
  RxHarness h = make_harness();
  const std::uint8_t payload[] = {0x42, 0x43};  // 2 bytes only
  h.frame(payload);
  h.idle(4);
  const sim::FrameList frames = h.run();
  ASSERT_EQ(frames.size(), 1u);
  // 2 payload + 4 FCS arrivals -> pushes = 2; those two bytes are payload.
  EXPECT_FALSE(frames[0].err);
  EXPECT_EQ(frames[0].bytes.size(), 2u);
}

}  // namespace
}  // namespace ffr::circuits
