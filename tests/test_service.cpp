// Suite for the service layer (service/content_hash, service/engine_registry,
// service/job_queue, service/metrics):
//  - content hashes are invariant under structurally identical copies (a
//    write -> read -> retarget round trip hits the same cache slot) and
//    distinguish different designs and testbenches;
//  - the registry serves one golden run to repeated and concurrent acquires
//    (hit/miss/build counters), enforces its byte budget LRU-first with the
//    newest entry pinned, and recomputes evicted entries bit-identically;
//  - campaign jobs through FfrService are bit-identical to direct
//    CampaignEngine::run, predict jobs serve a persisted TransferModel
//    (the feature-matrix class without ever constructing a simulator), and
//    job lifecycle (states, cancellation, failure capture, wait/poll) holds;
//  - sharded campaign jobs (N shard jobs + a merge job) reproduce the direct
//    engine run bit-identically, resume from partial files on disk (metrics
//    shards_completed / shards_resumed), and surface invalid partials as
//    job failures naming the shard;
//  - multi-threaded mixed submit/evict/predict stresses — including
//    concurrent sharded campaigns — keep every result bit-identical to
//    single-threaded references; this suite is the service layer's TSan
//    exercise (CI runs it under -fsanitize=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "core/transfer_flow.hpp"
#include "fault/campaign.hpp"
#include "fault/engine.hpp"
#include "fault/shard.hpp"
#include "features/extractor.hpp"
#include "netlist/verilog_reader.hpp"
#include "netlist/verilog_writer.hpp"
#include "service/content_hash.hpp"
#include "service/engine_registry.hpp"
#include "service/job_queue.hpp"
#include "service/metrics.hpp"
#include "sim/testbench.hpp"

namespace ffr::service {
namespace {

fault::CampaignConfig small_campaign() {
  fault::CampaignConfig config;
  config.injections_per_ff = 8;
  config.num_threads = 2;
  return config;
}

void expect_campaigns_bit_identical(const fault::CampaignResult& a,
                                    const fault::CampaignResult& b) {
  ASSERT_EQ(a.per_ff.size(), b.per_ff.size());
  for (std::size_t i = 0; i < a.per_ff.size(); ++i) {
    EXPECT_EQ(a.per_ff[i].name, b.per_ff[i].name);
    EXPECT_EQ(a.per_ff[i].classes.counts, b.per_ff[i].classes.counts)
        << "ff " << a.per_ff[i].name;
  }
  EXPECT_EQ(a.fdr_vector(), b.fdr_vector());
  EXPECT_EQ(a.total_injections, b.total_injections);
}

/// Shared fixtures: both in-tree circuits, their testbenches, and a small
/// persisted transfer model (trained once per process — campaigns are the
/// expensive part of this suite).
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mac_ = new circuits::MacCore(circuits::build_mac_core());
    mac_bench_ = new circuits::MacTestbench(circuits::build_mac_testbench(*mac_));
    pipe_ = new circuits::PipelineCore(circuits::build_pipeline_core());
    pipe_bench_ = new circuits::PipelineTestbench(
        circuits::build_pipeline_testbench(*pipe_));

    core::TransferConfig config;
    config.model = "linear";
    config.injections_per_ff = 8;
    config.num_threads = 2;
    const std::vector<core::TransferCircuit> circuits = {
        {&mac_->netlist, &mac_bench_->tb}};
    model_path_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() / "ffr_test_service_model.txt");
    core::train_transfer_model(circuits, config).save(*model_path_);
  }

  static void TearDownTestSuite() {
    std::filesystem::remove(*model_path_);
    delete model_path_;
    delete pipe_bench_;
    delete pipe_;
    delete mac_bench_;
    delete mac_;
  }

  static circuits::MacCore* mac_;
  static circuits::MacTestbench* mac_bench_;
  static circuits::PipelineCore* pipe_;
  static circuits::PipelineTestbench* pipe_bench_;
  static std::filesystem::path* model_path_;
};

circuits::MacCore* ServiceTest::mac_ = nullptr;
circuits::MacTestbench* ServiceTest::mac_bench_ = nullptr;
circuits::PipelineCore* ServiceTest::pipe_ = nullptr;
circuits::PipelineTestbench* ServiceTest::pipe_bench_ = nullptr;
std::filesystem::path* ServiceTest::model_path_ = nullptr;

// ---------------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, ContentHashIsDeterministicAndDiscriminates) {
  const ContentHash mac_hash = content_hash(mac_->netlist, mac_bench_->tb);
  EXPECT_EQ(mac_hash, content_hash(mac_->netlist, mac_bench_->tb));
  EXPECT_FALSE(mac_hash == content_hash(pipe_->netlist, pipe_bench_->tb));

  // A testbench tweak (shorter injection window) must change the key.
  sim::Testbench tweaked = mac_bench_->tb;
  tweaked.inject_end = tweaked.inject_end - 1;
  EXPECT_FALSE(mac_hash == content_hash(mac_->netlist, tweaked));

  EXPECT_EQ(mac_hash.hex().size(), 32u);
}

TEST_F(ServiceTest, ContentHashSurvivesWriteReadRetarget) {
  // An imported structural copy with a retargeted testbench is the same
  // content: the canonical testbench dump uses net names, not ids.
  const netlist::Netlist imported =
      netlist::read_verilog(netlist::to_verilog(mac_->netlist), "mac_copy.v");
  const sim::Testbench retargeted =
      sim::retarget_testbench(mac_bench_->tb, mac_->netlist, imported);
  EXPECT_EQ(content_hash(mac_->netlist, mac_bench_->tb),
            content_hash(imported, retargeted));
}

// ---------------------------------------------------------------------------
// Engine registry
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, RegistryServesRepeatAcquiresFromCache) {
  ServiceMetrics metrics;
  EngineRegistry registry({}, &metrics);

  const auto first = registry.acquire(mac_->netlist, mac_bench_->tb);
  const auto second = registry.acquire(mac_->netlist, mac_bench_->tb);
  EXPECT_EQ(first.get(), second.get());  // literally the same engine

  // The imported copy hits the same slot.
  const netlist::Netlist imported =
      netlist::read_verilog(netlist::to_verilog(mac_->netlist), "mac_copy.v");
  const sim::Testbench retargeted =
      sim::retarget_testbench(mac_bench_->tb, mac_->netlist, imported);
  const auto third = registry.acquire(imported, retargeted);
  EXPECT_EQ(first.get(), third.get());

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.cache_misses, 1u);
  EXPECT_EQ(snap.cache_hits, 2u);
  EXPECT_EQ(snap.engine_builds, 1u);
  EXPECT_EQ(snap.resident_engines, 1u);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_GT(registry.resident_bytes(), 0u);
  EXPECT_EQ(registry.resident_bytes(), first->resident_bytes());
}

TEST_F(ServiceTest, RegistryCachedEngineOutlivesCallersObjects) {
  // The registry owns copies: an engine acquired with short-lived objects
  // stays valid (and campaign results stay bit-identical to an engine built
  // on the originals).
  EngineRegistry registry;
  std::shared_ptr<const fault::CampaignEngine> engine;
  {
    const netlist::Netlist copy =
        netlist::read_verilog(netlist::to_verilog(mac_->netlist), "m.v");
    const sim::Testbench tb =
        sim::retarget_testbench(mac_bench_->tb, mac_->netlist, copy);
    engine = registry.acquire(copy, tb);
  }  // caller's netlist/testbench die here
  const fault::CampaignEngine direct(mac_->netlist, mac_bench_->tb);
  expect_campaigns_bit_identical(direct.run(small_campaign()),
                                 engine->run(small_campaign()));
}

TEST_F(ServiceTest, ConcurrentAcquiresCoalesceOntoOneBuild) {
  ServiceMetrics metrics;
  EngineRegistry registry({}, &metrics);
  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const fault::CampaignEngine>> engines(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        engines[t] = registry.acquire(mac_->netlist, mac_bench_->tb);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(engines[0].get(), engines[t].get());
  }
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.engine_builds, 1u);
  EXPECT_EQ(snap.cache_misses, 1u);
  EXPECT_EQ(snap.cache_hits, kThreads - 1);
}

TEST_F(ServiceTest, BudgetEvictionDropsLruKeepsNewestAndRecomputesIdentically) {
  ServiceMetrics metrics;
  RegistryConfig config;
  config.max_resident_bytes = 1;  // every second entry forces an eviction
  EngineRegistry registry(config, &metrics);

  const auto mac_engine = registry.acquire(mac_->netlist, mac_bench_->tb);
  const fault::CampaignResult before = mac_engine->run(small_campaign());
  // Pinned: the newest (only) entry stays resident despite the 1-byte budget.
  EXPECT_EQ(registry.size(), 1u);

  const auto pipe_engine = registry.acquire(pipe_->netlist, pipe_bench_->tb);
  EXPECT_EQ(registry.size(), 1u);  // mac evicted, pipeline pinned
  ASSERT_EQ(registry.eviction_log().size(), 1u);
  EXPECT_EQ(registry.eviction_log()[0].circuit, "mac_core");
  EXPECT_GT(registry.eviction_log()[0].bytes, 0u);
  EXPECT_EQ(metrics.snapshot().cache_evictions, 1u);

  // The held shared_ptr keeps the evicted engine usable...
  expect_campaigns_bit_identical(before, mac_engine->run(small_campaign()));
  // ...and re-acquiring rebuilds it with bit-identical campaign results.
  const auto rebuilt = registry.acquire(mac_->netlist, mac_bench_->tb);
  EXPECT_NE(rebuilt.get(), mac_engine.get());
  EXPECT_EQ(metrics.snapshot().engine_builds, 3u);
  expect_campaigns_bit_identical(before, rebuilt->run(small_campaign()));
}

TEST_F(ServiceTest, ExplicitEvictAndClear) {
  ServiceMetrics metrics;
  EngineRegistry registry({}, &metrics);
  (void)registry.acquire(mac_->netlist, mac_bench_->tb);
  (void)registry.acquire(pipe_->netlist, pipe_bench_->tb);
  EXPECT_EQ(registry.size(), 2u);

  EXPECT_TRUE(registry.evict(content_hash(mac_->netlist, mac_bench_->tb)));
  EXPECT_FALSE(registry.evict(content_hash(mac_->netlist, mac_bench_->tb)));
  EXPECT_EQ(registry.size(), 1u);
  registry.clear();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.resident_bytes(), 0u);
  EXPECT_EQ(metrics.snapshot().cache_evictions, 2u);
  EXPECT_EQ(metrics.snapshot().resident_engines, 0u);
}

// ---------------------------------------------------------------------------
// Job queue
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, CampaignJobMatchesDirectEngineRun) {
  const fault::CampaignEngine direct(mac_->netlist, mac_bench_->tb);
  const fault::CampaignResult reference = direct.run(small_campaign());

  FfrService service;
  const JobId id =
      service.submit_campaign(mac_->netlist, mac_bench_->tb, small_campaign());
  const JobStatus status = service.wait(id);
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.job_class, JobClass::kCampaign);
  EXPECT_GE(status.run_seconds, 0.0);
  expect_campaigns_bit_identical(reference, service.campaign_result(id));

  // Sharded variant: an ff_subset config rides through unchanged.
  fault::CampaignConfig shard = small_campaign();
  shard.ff_subset = {0, 2};
  const JobId shard_id =
      service.submit_campaign(mac_->netlist, mac_bench_->tb, shard);
  EXPECT_EQ(service.wait(shard_id).state, JobState::kDone);
  expect_campaigns_bit_identical(direct.run(shard),
                                 service.campaign_result(shard_id));
  EXPECT_EQ(service.metrics().snapshot().engine_builds, 1u);  // shared engine
}

TEST_F(ServiceTest, PredictJobServesPersistedModelWithoutInjection) {
  FfrService service;
  const JobId id =
      service.submit_predict(*model_path_, pipe_->netlist, pipe_bench_->tb);
  ASSERT_EQ(service.wait(id).state, JobState::kDone)
      << service.status(id).error;
  const linalg::Vector predicted = service.prediction(id);
  ASSERT_EQ(predicted.size(), pipe_->netlist.flip_flops().size());

  // Reference: the persisted model applied to golden-run features directly.
  const core::TransferModel loaded = core::TransferModel::load(*model_path_);
  const linalg::Vector reference =
      loaded.predict(pipe_->netlist, pipe_bench_->tb);
  ASSERT_EQ(reference.size(), predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    EXPECT_EQ(predicted[i], reference[i]) << "row " << i;
  }

  // A second predict on the same design reuses the cached golden run.
  const JobId again =
      service.submit_predict(*model_path_, pipe_->netlist, pipe_bench_->tb);
  EXPECT_EQ(service.wait(again).state, JobState::kDone);
  const MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.engine_builds, 1u);
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.predict_jobs, 2u);
}

TEST_F(ServiceTest, FeatureMatrixPredictJobNeverBuildsAnEngine) {
  // Pure model serving: features in, FDR out — no simulator anywhere.
  const sim::GoldenResult golden =
      sim::run_golden(pipe_->netlist, pipe_bench_->tb);
  const features::FeatureMatrix features =
      features::extract_features(pipe_->netlist, golden.activity);

  FfrService service;
  std::vector<JobId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(service.submit_predict(*model_path_, features));
  }
  service.wait_all();
  const core::TransferModel loaded = core::TransferModel::load(*model_path_);
  const linalg::Vector reference = loaded.predict(features);
  for (const JobId id : ids) {
    ASSERT_EQ(service.status(id).state, JobState::kDone)
        << service.status(id).error;
    const linalg::Vector predicted = service.prediction(id);
    ASSERT_EQ(predicted.size(), reference.size());
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      EXPECT_EQ(predicted[i], reference[i]);
    }
  }
  const MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.engine_builds, 0u);  // the acceptance criterion
  EXPECT_EQ(snap.cache_misses, 0u);
  EXPECT_EQ(snap.predict_jobs, 5u);
  EXPECT_EQ(snap.jobs_completed, 5u);
}

TEST_F(ServiceTest, JobLifecycleStatesCancellationAndErrors) {
  ServiceConfig config;
  config.num_workers = 1;  // serialize so queued jobs stay cancellable
  FfrService service(config);

  // Unknown ids throw.
  EXPECT_THROW((void)service.status(999), std::out_of_range);
  EXPECT_THROW((void)service.wait(999), std::out_of_range);
  EXPECT_THROW((void)service.campaign_result(999), std::out_of_range);

  // A failing job: mac netlist with the pipeline testbench cannot build an
  // engine; the error is captured, not thrown on the worker.
  const JobId bad =
      service.submit_campaign(mac_->netlist, pipe_bench_->tb, small_campaign());
  const JobStatus bad_status = service.wait(bad);
  EXPECT_EQ(bad_status.state, JobState::kFailed);
  EXPECT_FALSE(bad_status.error.empty());
  EXPECT_THROW((void)service.campaign_result(bad), std::logic_error);

  // Queue a burst on the single worker and cancel the tail immediately:
  // at least the last job should still be queued at cancel time.
  std::vector<JobId> burst;
  for (int i = 0; i < 6; ++i) {
    burst.push_back(
        service.submit_campaign(mac_->netlist, mac_bench_->tb, small_campaign()));
  }
  const bool cancelled = service.cancel(burst.back());
  service.wait_all();
  if (cancelled) {
    EXPECT_EQ(service.status(burst.back()).state, JobState::kCancelled);
    EXPECT_THROW((void)service.campaign_result(burst.back()), std::logic_error);
    EXPECT_GE(service.metrics().snapshot().jobs_cancelled, 1u);
  }
  // Everything not cancelled ran to done.
  for (std::size_t i = 0; i + 1 < burst.size(); ++i) {
    EXPECT_EQ(service.status(burst[i]).state, JobState::kDone);
  }
  // Cancelling a finished job is a no-op.
  EXPECT_FALSE(service.cancel(burst.front()));

  // A missing model file fails the job with a captured error.
  const JobId missing = service.submit_predict(
      std::filesystem::path("/nonexistent/model.txt"), pipe_->netlist,
      pipe_bench_->tb);
  EXPECT_EQ(service.wait(missing).state, JobState::kFailed);
}

TEST_F(ServiceTest, MetricsTextDumpCoversTheSurface) {
  FfrService service;
  const JobId id =
      service.submit_campaign(mac_->netlist, mac_bench_->tb, small_campaign());
  (void)service.wait(id);
  const std::string text = service.metrics().to_text();
  for (const char* key :
       {"ffr_service_cache_misses 1", "ffr_service_engine_builds 1",
        "ffr_service_jobs_completed 1", "ffr_service_queue_depth 0",
        "ffr_service_campaign_seconds_count 1",
        "ffr_service_predict_seconds_count 0"}) {
    EXPECT_NE(text.find(key), std::string::npos)
        << "missing '" << key << "' in:\n" << text;
  }
}

// ---------------------------------------------------------------------------
// Multi-threaded stress (the TSan target)
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, StressMixedSubmitEvictPredictStaysBitIdentical) {
  // Single-threaded references.
  const fault::CampaignEngine mac_direct(mac_->netlist, mac_bench_->tb);
  const fault::CampaignEngine pipe_direct(pipe_->netlist, pipe_bench_->tb);
  const fault::CampaignResult mac_ref = mac_direct.run(small_campaign());
  const fault::CampaignResult pipe_ref = pipe_direct.run(small_campaign());
  const core::TransferModel loaded = core::TransferModel::load(*model_path_);
  const linalg::Vector predict_ref =
      loaded.predict(pipe_->netlist, pipe_bench_->tb);

  ServiceConfig config;
  config.num_workers = 4;
  config.registry.max_resident_bytes = 1;  // constant eviction pressure
  FfrService service(config);

  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kOpsPerThread = 4;
  std::vector<std::vector<JobId>> campaign_ids(kThreads);
  std::vector<std::vector<JobId>> predict_ids(kThreads);
  std::vector<std::vector<bool>> on_mac(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t op = 0; op < kOpsPerThread; ++op) {
          const bool mac_turn = (t + op) % 2 == 0;
          on_mac[t].push_back(mac_turn);
          campaign_ids[t].push_back(service.submit_campaign(
              mac_turn ? mac_->netlist : pipe_->netlist,
              mac_turn ? mac_bench_->tb : pipe_bench_->tb, small_campaign()));
          predict_ids[t].push_back(service.submit_predict(
              *model_path_, pipe_->netlist, pipe_bench_->tb));
          if (op == 1) {
            // Concurrent explicit eviction against in-flight jobs.
            (void)service.registry().evict(
                content_hash(mac_->netlist, mac_bench_->tb));
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  service.wait_all();

  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t op = 0; op < kOpsPerThread; ++op) {
      const JobId cid = campaign_ids[t][op];
      ASSERT_EQ(service.status(cid).state, JobState::kDone)
          << service.status(cid).error;
      expect_campaigns_bit_identical(on_mac[t][op] ? mac_ref : pipe_ref,
                                     service.campaign_result(cid));
      const JobId pid = predict_ids[t][op];
      ASSERT_EQ(service.status(pid).state, JobState::kDone)
          << service.status(pid).error;
      const linalg::Vector predicted = service.prediction(pid);
      ASSERT_EQ(predicted.size(), predict_ref.size());
      for (std::size_t i = 0; i < predicted.size(); ++i) {
        EXPECT_EQ(predicted[i], predict_ref[i]);
      }
    }
  }

  // Eviction-then-recompute identity under the 1-byte budget: acquiring
  // both designs back-to-back must evict the older (pinned-newest rule) and
  // still serve bit-identical campaigns.
  const auto mac_again = service.registry().acquire(mac_->netlist, mac_bench_->tb);
  const auto pipe_again =
      service.registry().acquire(pipe_->netlist, pipe_bench_->tb);
  EXPECT_EQ(service.registry().size(), 1u);
  expect_campaigns_bit_identical(mac_ref, mac_again->run(small_campaign()));
  expect_campaigns_bit_identical(pipe_ref, pipe_again->run(small_campaign()));

  const MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.jobs_submitted, kThreads * kOpsPerThread * 2);
  EXPECT_EQ(snap.jobs_completed, kThreads * kOpsPerThread * 2);
  EXPECT_EQ(snap.jobs_failed, 0u);
  EXPECT_EQ(snap.queue_depth, 0u);
  // Every acquire is accounted exactly once, every miss built exactly once,
  // and the byte budget forced real evictions.
  EXPECT_EQ(snap.cache_hits + snap.cache_misses,
            kThreads * kOpsPerThread * 2 + 2);
  EXPECT_EQ(snap.cache_misses, snap.engine_builds);
  EXPECT_GE(snap.cache_evictions, 1u);
}

// ---------------------------------------------------------------------------
// Sharded campaign jobs
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, ShardedCampaignJobBitIdenticalToDirectRun) {
  const fault::CampaignEngine direct(mac_->netlist, mac_bench_->tb);
  const fault::CampaignResult reference = direct.run(small_campaign());

  FfrService service;
  std::vector<JobId> shard_jobs;
  const JobId merge_id = service.submit_sharded_campaign(
      mac_->netlist, mac_bench_->tb, small_campaign(), 3, {}, &shard_jobs);
  ASSERT_EQ(shard_jobs.size(), 3u);
  ASSERT_EQ(service.wait(merge_id).state, JobState::kDone)
      << service.status(merge_id).error;

  const fault::CampaignResult merged = service.campaign_result(merge_id);
  expect_campaigns_bit_identical(reference, merged);
  EXPECT_EQ(merged.total_sim_passes, reference.total_sim_passes);
  EXPECT_EQ(merged.cycles_simulated, reference.cycles_simulated);
  EXPECT_EQ(merged.ops_evaluated, reference.ops_evaluated);
  EXPECT_EQ(merged.checkpoint_restores, reference.checkpoint_restores);

  // Each shard job is an ordinary done campaign job holding its own share.
  std::uint64_t share_sum = 0;
  for (const JobId id : shard_jobs) {
    ASSERT_EQ(service.status(id).state, JobState::kDone);
    share_sum += service.campaign_result(id).total_injections;
  }
  EXPECT_EQ(share_sum, reference.total_injections);

  const MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.shards_completed, 3u);
  EXPECT_EQ(snap.shards_resumed, 0u);
  EXPECT_EQ(snap.jobs_completed, 4u);  // 3 shards + merge
  const std::string text = service.metrics().to_text();
  EXPECT_NE(text.find("ffr_service_shards_completed 3"), std::string::npos);
  EXPECT_NE(text.find("ffr_service_shards_resumed 0"), std::string::npos);
}

TEST_F(ServiceTest, ShardedCampaignResumesFromPartialDir) {
  const auto dir =
      std::filesystem::temp_directory_path() / "ffr_service_shard_resume";
  std::filesystem::remove_all(dir);

  const fault::CampaignEngine direct(mac_->netlist, mac_bench_->tb);
  const fault::CampaignResult reference = direct.run(small_campaign());

  FfrService service;
  const JobId first = service.submit_sharded_campaign(
      mac_->netlist, mac_bench_->tb, small_campaign(), 3, dir);
  ASSERT_EQ(service.wait(first).state, JobState::kDone)
      << service.status(first).error;
  expect_campaigns_bit_identical(reference, service.campaign_result(first));
  EXPECT_EQ(service.metrics().snapshot().shards_completed, 3u);
  EXPECT_EQ(service.metrics().snapshot().shards_resumed, 0u);

  // Same campaign again: every shard resumes from its partial file.
  const JobId second = service.submit_sharded_campaign(
      mac_->netlist, mac_bench_->tb, small_campaign(), 3, dir);
  ASSERT_EQ(service.wait(second).state, JobState::kDone)
      << service.status(second).error;
  expect_campaigns_bit_identical(reference, service.campaign_result(second));
  EXPECT_EQ(service.metrics().snapshot().shards_completed, 3u);
  EXPECT_EQ(service.metrics().snapshot().shards_resumed, 3u);

  // Crash recovery: one partial lost, exactly that shard re-runs.
  ASSERT_TRUE(std::filesystem::remove(dir / fault::partial_filename(1, 3)));
  const JobId third = service.submit_sharded_campaign(
      mac_->netlist, mac_bench_->tb, small_campaign(), 3, dir);
  ASSERT_EQ(service.wait(third).state, JobState::kDone)
      << service.status(third).error;
  expect_campaigns_bit_identical(reference, service.campaign_result(third));
  EXPECT_EQ(service.metrics().snapshot().shards_completed, 4u);
  EXPECT_EQ(service.metrics().snapshot().shards_resumed, 5u);

  std::filesystem::remove_all(dir);
}

TEST_F(ServiceTest, ShardedCampaignFailsOnInvalidPartial) {
  const auto dir =
      std::filesystem::temp_directory_path() / "ffr_service_shard_invalid";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream os(dir / fault::partial_filename(0, 2));
    os << "ffr-partial 1 campaign_shard\ntruncated";
  }

  FfrService service;
  std::vector<JobId> shard_jobs;
  const JobId merge_id = service.submit_sharded_campaign(
      mac_->netlist, mac_bench_->tb, small_campaign(), 2, dir, &shard_jobs);
  const JobStatus merged = service.wait(merge_id);
  // The corrupt partial fails shard 0, and the merge reports which shard.
  EXPECT_EQ(merged.state, JobState::kFailed);
  EXPECT_NE(merged.error.find("shard 0"), std::string::npos) << merged.error;
  EXPECT_EQ(service.status(shard_jobs[0]).state, JobState::kFailed);
  EXPECT_EQ(service.status(shard_jobs[1]).state, JobState::kDone);

  EXPECT_THROW((void)service.submit_sharded_campaign(
                   mac_->netlist, mac_bench_->tb, small_campaign(), 0),
               std::invalid_argument);
  std::filesystem::remove_all(dir);
}

TEST_F(ServiceTest, StressShardJobsRacingPredictsAndEvictionStayBitIdentical) {
  // The sharded-campaign TSan exercise: concurrent sharded submissions on
  // both circuits, racing predict jobs and explicit eviction under a 1-byte
  // registry budget (every shard job may rebuild the engine). Every merged
  // result must stay bit-identical to the direct single-process runs.
  const fault::CampaignEngine mac_direct(mac_->netlist, mac_bench_->tb);
  const fault::CampaignEngine pipe_direct(pipe_->netlist, pipe_bench_->tb);
  const fault::CampaignResult mac_ref = mac_direct.run(small_campaign());
  const fault::CampaignResult pipe_ref = pipe_direct.run(small_campaign());

  ServiceConfig config;
  config.num_workers = 4;
  config.registry.max_resident_bytes = 1;  // constant eviction pressure
  FfrService service(config);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kShards = 3;
  std::vector<JobId> merge_ids(kThreads);
  std::vector<std::vector<JobId>> shard_ids(kThreads);
  std::vector<JobId> predict_ids(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const bool mac_turn = t % 2 == 0;
        merge_ids[t] = service.submit_sharded_campaign(
            mac_turn ? mac_->netlist : pipe_->netlist,
            mac_turn ? mac_bench_->tb : pipe_bench_->tb, small_campaign(),
            kShards, {}, &shard_ids[t]);
        predict_ids[t] = service.submit_predict(*model_path_, pipe_->netlist,
                                                pipe_bench_->tb);
        (void)service.registry().evict(
            content_hash(mac_->netlist, mac_bench_->tb));
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  service.wait_all();

  const core::TransferModel loaded = core::TransferModel::load(*model_path_);
  const linalg::Vector predict_ref =
      loaded.predict(pipe_->netlist, pipe_bench_->tb);
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(service.status(merge_ids[t]).state, JobState::kDone)
        << service.status(merge_ids[t]).error;
    const fault::CampaignResult& reference = t % 2 == 0 ? mac_ref : pipe_ref;
    const fault::CampaignResult merged = service.campaign_result(merge_ids[t]);
    expect_campaigns_bit_identical(reference, merged);
    EXPECT_EQ(merged.total_sim_passes, reference.total_sim_passes);
    EXPECT_EQ(merged.cycles_simulated, reference.cycles_simulated);
    EXPECT_EQ(merged.ops_evaluated, reference.ops_evaluated);
    for (const JobId id : shard_ids[t]) {
      EXPECT_EQ(service.status(id).state, JobState::kDone);
    }
    const linalg::Vector predicted = service.prediction(predict_ids[t]);
    ASSERT_EQ(predicted.size(), predict_ref.size());
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      EXPECT_EQ(predicted[i], predict_ref[i]);
    }
  }

  const MetricsSnapshot snap = service.metrics().snapshot();
  EXPECT_EQ(snap.shards_completed, kThreads * kShards);
  EXPECT_EQ(snap.shards_resumed, 0u);
  EXPECT_EQ(snap.jobs_submitted, kThreads * (kShards + 2));
  EXPECT_EQ(snap.jobs_completed, kThreads * (kShards + 2));
  EXPECT_EQ(snap.jobs_failed, 0u);
  EXPECT_EQ(snap.queue_depth, 0u);
}

}  // namespace
}  // namespace ffr::service
