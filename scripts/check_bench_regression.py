#!/usr/bin/env python3
"""CI guard for the deterministic benchmark metrics.

Compares a freshly generated bench JSON against the committed baseline
(bench/baselines/) on the *deterministic* fields only — never wall-clock.
The file schema is autodetected from the rows:

SFI campaign rows (BENCH_sfi_campaign.json) carry cost counters —
simulation passes, cycles simulated, op evaluations — which depend only on
the campaign configuration and the adaptive pass schedule, never on host
load, thread timing or SIMD throughput. A counter that grew beyond the
tolerance is a real cost regression (a scheduling or replay change made the
engine do more work), not noise, so the guard can be strict where a
wall-clock gate could not be. mean_fdr must match exactly: every engine
configuration is bit-identical to the flat reference by contract.

Transfer rows (BENCH_transfer.json) carry model-quality metrics. The
training pipeline is deterministic for a fixed injection count, so
train_rows and target_ffs must match exactly, and r2/spearman/mae must
match at a fixed decimal precision (default 6; host-ISA reduction-order
differences live far below that).

Rows are keyed by their full configuration tuple. Keys present in only one
file are skipped with a note — CI runners without AVX-512 resolve k512
requests to 256 lanes, so their key sets legitimately differ from a
baseline generated on an AVX-512 host — but zero matching keys is an error
(it means the key schema drifted and the guard is vacuous).

Usage: check_bench_regression.py BASELINE.json CURRENT.json
           [--tolerance F] [--precision N]
Exit status: 0 = no regression, 1 = regression or vacuous comparison.
"""

import argparse
import json
import sys

# Per-schema field roles. `detect` is a field present in every row of that
# schema and in no other; `key` identifies a row; `counters` are guarded
# against growth (tolerance applies); `exact` must match exactly; `fixed`
# are floats compared at --precision decimals.
SCHEMAS = {
    "sfi_campaign": {
        "detect": "circuit",
        "key": (
            "circuit",
            "mode",
            "threads",
            "batch",
            "checkpoint_interval",
            "injections_per_ff",
            "lane_width",
            "blocks_per_pass",
        ),
        "counters": ("passes", "cycles_simulated", "ops_evaluated"),
        "exact": (),
        "fixed": (),
        # mean_fdr is bit-identity by engine contract: compare at 9 decimals
        # (the serialized precision), flagged as identity breakage.
        "identity": ("mean_fdr",),
    },
    "transfer": {
        "detect": "target",
        "key": ("target", "train_set", "model", "adapted", "injections_per_ff"),
        "counters": (),
        "exact": ("train_rows", "target_ffs"),
        "fixed": ("r2", "spearman", "mae"),
        "identity": (),
    },
}


def detect_schema(rows, path):
    for name, schema in SCHEMAS.items():
        if all(schema["detect"] in row for row in rows):
            return name
    sys.exit(f"error: {path}: rows match no known bench schema")


def load_rows(path):
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    if not isinstance(rows, list) or not rows:
        sys.exit(f"error: {path}: expected a non-empty JSON array of bench rows")
    schema_name = detect_schema(rows, path)
    schema = SCHEMAS[schema_name]
    keyed = {}
    for row in rows:
        key = tuple(row.get(field) for field in schema["key"])
        # Duplicate keys appear when two requested widths resolve to the
        # same native width; their deterministic counters must agree.
        if key in keyed:
            for field in schema["counters"]:
                if keyed[key].get(field) != row.get(field):
                    sys.exit(
                        f"error: {path}: duplicate key {key} with "
                        f"conflicting '{field}' counters"
                    )
        keyed[key] = row
    return schema_name, keyed


def describe(schema, key):
    return ", ".join(f"{field}={value}" for field, value in zip(schema["key"], key))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON (bench/baselines/)")
    parser.add_argument("current", help="freshly generated JSON to check")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="allowed fractional counter growth (default 0: exact)",
    )
    parser.add_argument(
        "--precision",
        type=int,
        default=6,
        help="decimals for fixed-precision float comparison (default 6)",
    )
    args = parser.parse_args()

    base_schema_name, baseline = load_rows(args.baseline)
    cur_schema_name, current = load_rows(args.current)
    if base_schema_name != cur_schema_name:
        print(
            f"error: schema mismatch: baseline is '{base_schema_name}', "
            f"current is '{cur_schema_name}'"
        )
        return 1
    schema = SCHEMAS[base_schema_name]
    print(f"schema: {base_schema_name}")

    def fixed(value, decimals):
        return f"{value:.{decimals}f}"

    matched = 0
    regressions = []
    improvements = []
    for key, base_row in baseline.items():
        cur_row = current.get(key)
        if cur_row is None:
            print(f"skip (no current row): {describe(schema, key)}")
            continue
        matched += 1
        where = describe(schema, key)
        for field in schema["counters"]:
            base_value = base_row[field]
            cur_value = cur_row[field]
            if cur_value > base_value * (1.0 + args.tolerance):
                regressions.append(f"{field} {base_value} -> {cur_value} [{where}]")
            elif cur_value < base_value:
                improvements.append(f"{field} {base_value} -> {cur_value} [{where}]")
        for field in schema["exact"]:
            if base_row[field] != cur_row[field]:
                regressions.append(
                    f"{field} {base_row[field]} -> {cur_row[field]} "
                    f"(deterministic field changed) [{where}]"
                )
        for field in schema["fixed"]:
            base_value = fixed(base_row[field], args.precision)
            cur_value = fixed(cur_row[field], args.precision)
            if base_value != cur_value:
                regressions.append(
                    f"{field} {base_value} -> {cur_value} "
                    f"(changed at {args.precision} decimals) [{where}]"
                )
        for field in schema["identity"]:
            if fixed(base_row[field], 9) != fixed(cur_row[field], 9):
                regressions.append(
                    f"{field} {fixed(base_row[field], 9)} -> "
                    f"{fixed(cur_row[field], 9)} (bit-identity broken) [{where}]"
                )
    for key in current:
        if key not in baseline:
            print(f"note: new row not in baseline: {describe(schema, key)}")

    if matched == 0:
        print("error: no baseline row matched any current row — the key "
              "schema drifted and this comparison is vacuous")
        return 1
    for line in improvements:
        print(f"improved: {line}")
    if regressions:
        print(f"\n{len(regressions)} deterministic-metric regression(s):")
        for line in regressions:
            print(f"  REGRESSION: {line}")
        return 1
    print(f"ok: {matched} row(s) compared, no deterministic-metric regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
