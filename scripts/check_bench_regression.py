#!/usr/bin/env python3
"""CI perf-guard for the SFI campaign benchmark.

Compares a freshly generated BENCH_sfi_campaign.json against the committed
baseline on the *deterministic* cost counters — simulation passes, cycles
simulated, op evaluations — which depend only on the campaign configuration
and the adaptive pass schedule, never on host load, thread timing or SIMD
throughput. A counter that grew beyond the tolerance is a real cost
regression (a scheduling or replay change made the engine do more work), not
noise, so the guard can be strict where a wall-clock gate could not be.
mean_fdr must match exactly: every engine configuration is bit-identical to
the flat reference by contract.

Rows are keyed by the full configuration tuple. Keys present in only one
file are skipped with a note — CI runners without AVX-512 resolve k512
requests to 256 lanes, so their key sets legitimately differ from a
baseline generated on an AVX-512 host — but zero matching keys is an error
(it means the key schema drifted and the guard is vacuous).

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--tolerance F]
Exit status: 0 = no regression, 1 = regression or vacuous comparison.
"""

import argparse
import json
import sys

# Configuration fields identifying a row; counters are comparable only
# between rows that agree on all of them.
KEY_FIELDS = (
    "circuit",
    "mode",
    "threads",
    "batch",
    "checkpoint_interval",
    "injections_per_ff",
    "lane_width",
    "blocks_per_pass",
)

# Deterministic cost counters guarded against growth.
COUNTER_FIELDS = ("passes", "cycles_simulated", "ops_evaluated")


def load_rows(path):
    with open(path, encoding="utf-8") as f:
        rows = json.load(f)
    if not isinstance(rows, list):
        sys.exit(f"error: {path}: expected a JSON array of benchmark rows")
    keyed = {}
    for row in rows:
        key = tuple(row.get(field) for field in KEY_FIELDS)
        # Duplicate keys appear when two requested widths resolve to the
        # same native width; their deterministic counters must agree.
        if key in keyed:
            for field in COUNTER_FIELDS:
                if keyed[key].get(field) != row.get(field):
                    sys.exit(
                        f"error: {path}: duplicate key {key} with "
                        f"conflicting '{field}' counters"
                    )
        keyed[key] = row
    return keyed


def describe(key):
    return ", ".join(f"{field}={value}" for field, value in zip(KEY_FIELDS, key))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_sfi_campaign.json")
    parser.add_argument("current", help="freshly generated JSON to check")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="allowed fractional counter growth (default 0: exact)",
    )
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)

    matched = 0
    regressions = []
    improvements = []
    for key, base_row in baseline.items():
        cur_row = current.get(key)
        if cur_row is None:
            print(f"skip (no current row): {describe(key)}")
            continue
        matched += 1
        for field in COUNTER_FIELDS:
            base_value = base_row[field]
            cur_value = cur_row[field]
            if cur_value > base_value * (1.0 + args.tolerance):
                regressions.append(
                    f"{field} {base_value} -> {cur_value} [{describe(key)}]"
                )
            elif cur_value < base_value:
                improvements.append(
                    f"{field} {base_value} -> {cur_value} [{describe(key)}]"
                )
        if f"{base_row['mean_fdr']:.9f}" != f"{cur_row['mean_fdr']:.9f}":
            regressions.append(
                f"mean_fdr {base_row['mean_fdr']:.9f} -> "
                f"{cur_row['mean_fdr']:.9f} (bit-identity broken) "
                f"[{describe(key)}]"
            )
    for key in current:
        if key not in baseline:
            print(f"note: new row not in baseline: {describe(key)}")

    if matched == 0:
        print("error: no baseline row matched any current row — the key "
              "schema drifted and this comparison is vacuous")
        return 1
    for line in improvements:
        print(f"improved: {line}")
    if regressions:
        print(f"\n{len(regressions)} deterministic-counter regression(s):")
        for line in regressions:
            print(f"  REGRESSION: {line}")
        return 1
    print(f"ok: {matched} row(s) compared, no counter regressions, "
          f"mean_fdr bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
