#!/usr/bin/env python3
"""Checks that every relative markdown link in the repo's documentation
points at a file that exists.

Scans the top-level *.md files and docs/*.md for inline links
``[text](target)``; external schemes (http/https/mailto) are skipped, and
``#anchor`` suffixes are stripped before the existence check. Exits
non-zero listing every broken link. Run from the repository root:

    python3 scripts/check_markdown_links.py
"""

import pathlib
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def candidate_files(root: pathlib.Path):
    yield from sorted(root.glob("*.md"))
    yield from sorted((root / "docs").glob("*.md"))


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    for md_file in candidate_files(root):
        text = md_file.read_text(encoding="utf-8")
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md_file.parent / path).resolve()
            checked += 1
            if not resolved.exists():
                line = text.count("\n", 0, match.start()) + 1
                broken.append(f"{md_file.relative_to(root)}:{line}: {target}")
    if broken:
        print("broken markdown links:")
        for entry in broken:
            print(f"  {entry}")
        return 1
    print(f"markdown links OK ({checked} relative links checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
